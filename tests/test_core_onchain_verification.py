"""On-chain token verification (Alg. 1) through SMACS-enabled contracts.

These tests drive the full path: Token Service issuance -> transaction with
embedded token -> contract-side verification -> method body execution, and
check every rejection branch of Alg. 1 plus the gas-category accounting.
"""


from repro.core import TokenType
from repro.core.token import ONE_TIME_UNSET, Token, signing_digest
from repro.crypto.keys import KeyPair


def submit_with(alice, recorder, token, amount=5):
    """Send recorder.submit with raw token bytes and return the receipt."""
    raw = token.to_bytes() if isinstance(token, Token) else token
    return alice.transact(recorder, "submit", amount, token=raw)


# --- the happy paths -----------------------------------------------------------------


def test_super_token_grants_any_method(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.SUPER)
    assert submit_with(alice, recorder, token).success
    assert alice.transact(recorder, "sensitive_reset", token=token.to_bytes()).success


def test_method_token_grants_only_its_method(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    assert submit_with(alice, recorder, token).success
    other = alice.transact(recorder, "sensitive_reset", token=token.to_bytes())
    assert not other.success
    assert "denied" in other.error


def test_argument_token_grants_only_exact_arguments(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(
        recorder, TokenType.ARGUMENT, "submit", arguments={"amount": 9}
    )
    ok = alice.transact(recorder, "submit", amount=9, token=token.to_bytes())
    assert ok.success
    wrong_value = alice.transact(recorder, "submit", amount=10, token=token.to_bytes())
    assert not wrong_value.success


def test_method_token_allows_arbitrary_arguments(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    assert submit_with(alice, recorder, token, amount=1).success
    assert submit_with(alice, recorder, token, amount=999).success
    assert chain.read(recorder, "total") == 1000


def test_reusable_token_works_until_expiry(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    for _ in range(3):
        assert submit_with(alice, recorder, token).success
    assert chain.read(recorder, "entries") == 3


# --- rejection branches of Alg. 1 ----------------------------------------------------------


def test_missing_token_rejected(alice, recorder):
    receipt = alice.transact(recorder, "submit", 5)
    assert not receipt.success
    assert "denied" in receipt.error


def test_expired_token_rejected(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    chain.advance_time(3601)  # default lifetime is one hour
    receipt = submit_with(alice, recorder, token)
    assert not receipt.success


def test_token_valid_just_before_expiry(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    chain.advance_time(3500)
    assert submit_with(alice, recorder, token).success


def test_forged_signature_rejected(chain, alice, recorder, token_service):
    # An adversary without skTS signs the correct datagram with its own key.
    mallory = KeyPair.from_seed("mallory")
    expire = chain.timestamp + 3600
    digest = signing_digest(TokenType.METHOD, expire, ONE_TIME_UNSET,
                            alice.address, recorder.this, method="submit")
    forged = Token(TokenType.METHOD, expire, ONE_TIME_UNSET, mallory.sign(digest))
    assert not submit_with(alice, recorder, forged).success


def test_garbage_token_bytes_rejected(alice, recorder):
    receipt = alice.transact(recorder, "submit", 5, token=b"\x00" * 86)
    assert not receipt.success
    receipt = alice.transact(recorder, "submit", 5, token=b"\x01\x02\x03")
    assert not receipt.success


def test_token_for_wrong_contract_rejected(chain, owner, alice, alice_wallet,
                                            recorder, token_service):
    from repro.contracts.protected_target import ProtectedRecorder
    from repro.core import OwnerWallet

    other = OwnerWallet(owner, token_service).deploy_protected(ProtectedRecorder).return_value
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    # The token names `recorder` as cAddr; presenting it to `other` must fail.
    receipt = alice.transact(other, "submit", 5, token=token.to_bytes())
    assert not receipt.success


def test_substitution_attack_token_bound_to_client(chain, alice, bob, alice_wallet, recorder):
    """§VII-A(a): an intercepted token cannot be used from another address."""
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    stolen = bob.transact(recorder, "submit", 5, token=token.to_bytes())
    assert not stolen.success
    assert submit_with(alice, recorder, token).success  # still fine for alice


def test_tampered_token_fields_rejected(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    raw = bytearray(token.to_bytes())
    raw[1:5] = (2**31).to_bytes(4, "big")  # stretch the expiry
    receipt = alice.transact(recorder, "submit", 5, token=bytes(raw))
    assert not receipt.success


def test_wrong_token_service_key_rejected(chain, owner, alice, recorder):
    # A full, well-formed token from a *different* (attacker-run) TS.
    from repro.core import TokenService, TokenRequest

    rogue = TokenService(keypair=KeyPair.from_seed("rogue"), clock=chain.clock)
    token = rogue.issue_token(TokenRequest.method_token(recorder.this, alice.address, "submit"))
    assert not submit_with(alice, recorder, token).success


# --- one-time tokens on-chain --------------------------------------------------------------------


def test_one_time_token_single_use(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
    assert token.index == 0
    assert submit_with(alice, recorder, token).success
    replay = submit_with(alice, recorder, token)
    assert not replay.success
    assert chain.read(recorder, "entries") == 1


def test_one_time_tokens_used_out_of_order(chain, alice, alice_wallet, recorder):
    tokens = [
        alice_wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
        for _ in range(4)
    ]
    order = [tokens[2], tokens[0], tokens[3], tokens[1]]
    results = [submit_with(alice, recorder, t).success for t in order]
    assert results == [True, True, True, True]


def test_one_time_token_rejected_if_contract_has_no_bitmap(chain, owner, alice, token_service):
    from repro.contracts.protected_target import ProtectedRecorder
    from repro.core import ClientWallet, OwnerWallet

    bare = OwnerWallet(owner, token_service).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=0
    ).return_value
    wallet = ClientWallet(alice, {bare.this: token_service})
    token = wallet.request_token(bare, TokenType.METHOD, "submit", one_time=True)
    assert not alice.transact(bare, "submit", 5, token=token.to_bytes()).success


def test_failed_body_does_not_consume_one_time_token(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
    # amount=0 fails the body's require AFTER verification; the bitmap update
    # must be rolled back with the rest of the frame.
    failed = alice.transact(recorder, "submit", 0, token=token.to_bytes())
    assert not failed.success
    assert submit_with(alice, recorder, token, amount=3).success


# --- gas accounting --------------------------------------------------------------------------------


def test_gas_breakdown_has_verify_category(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    receipt = submit_with(alice, recorder, token)
    assert receipt.breakdown("verify") > 50_000
    assert receipt.misc_gas > 21_000


def test_one_time_adds_bitmap_category(chain, alice, alice_wallet, recorder):
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
    receipt = submit_with(alice, recorder, token)
    assert receipt.breakdown("bitmap") > 10_000


def test_argument_verification_costs_more_than_method_than_super(chain, alice,
                                                                  alice_wallet, recorder):
    costs = {}
    for token_type in (TokenType.SUPER, TokenType.METHOD, TokenType.ARGUMENT):
        kwargs = {}
        if token_type is TokenType.METHOD:
            kwargs = {"method": "submit"}
        elif token_type is TokenType.ARGUMENT:
            kwargs = {"method": "submit", "arguments": {"amount": 5}}
        token = alice_wallet.request_token(recorder, token_type, **kwargs)
        receipt = alice.transact(recorder, "submit", amount=5, token=token.to_bytes())
        assert receipt.success
        costs[token_type] = receipt.breakdown("verify")
    assert costs[TokenType.SUPER] < costs[TokenType.METHOD] < costs[TokenType.ARGUMENT]


def test_internal_calls_skip_verification(chain, owner, alice, token_service):
    """Fig. 4: a protected public method called internally needs no token."""
    from repro.chain.contract import external
    from repro.core import OwnerWallet
    from repro.core.smacs_contract import SMACSContract, smacs_protected

    class Outer(SMACSContract):
        def constructor(self, ts_address):
            self.init_smacs(ts_address)
            self.storage["hits"] = 0

        @external
        @smacs_protected
        def entry(self):
            return self.helper()

        @external
        @smacs_protected
        def helper(self):
            return self.storage.increment("hits")

    contract = OwnerWallet(owner, token_service).deploy_protected(Outer).return_value
    from repro.core import ClientWallet

    wallet = ClientWallet(alice, {contract.this: token_service})
    token = wallet.request_token(contract, TokenType.METHOD, "entry")
    receipt = alice.transact(contract, "entry", token=token.to_bytes())
    assert receipt.success, receipt.error
    assert receipt.return_value == 1
    # Calling helper() externally with the entry token still fails.
    assert not alice.transact(contract, "helper", token=token.to_bytes()).success
