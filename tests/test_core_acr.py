"""Unit tests for Access Control Rules and rule sets (§IV-E, Fig. 6)."""


from repro.core.acr import (
    AccessDecision,
    ArgumentRule,
    BlacklistRule,
    PredicateRule,
    RuleSet,
    RuntimeVerificationRule,
    WhitelistRule,
)
from repro.core.token import TokenType
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair

ALICE = KeyPair.from_seed("acr-alice").address
BOB = KeyPair.from_seed("acr-bob").address
EVE = KeyPair.from_seed("acr-eve").address
CONTRACT = KeyPair.from_seed("acr-contract").address


def super_request(client):
    return TokenRequest.super_token(CONTRACT, client)


def method_request(client, method="withdraw"):
    return TokenRequest.method_token(CONTRACT, client, method)


def argument_request(client, method="submit", arguments=None):
    return TokenRequest.argument_token(CONTRACT, client, method, arguments or {"amount": 5})


# --- individual rules ---------------------------------------------------------------


def test_access_decision_truthiness():
    assert AccessDecision.allow()
    assert not AccessDecision.deny("nope")


def test_whitelist_allows_listed_denies_rest():
    rule = WhitelistRule([ALICE, BOB])
    assert rule.evaluate(super_request(ALICE)).allowed
    assert not rule.evaluate(super_request(EVE)).allowed


def test_whitelist_accepts_hex_addresses():
    rule = WhitelistRule(["0x" + ALICE.hex()])
    assert rule.evaluate(super_request(ALICE)).allowed


def test_whitelist_dynamic_add_remove():
    rule = WhitelistRule([ALICE])
    assert not rule.evaluate(super_request(EVE)).allowed
    rule.add(EVE)
    assert rule.evaluate(super_request(EVE)).allowed
    rule.remove(EVE)
    assert not rule.evaluate(super_request(EVE)).allowed


def test_method_scoped_whitelist_ignores_other_methods():
    rule = WhitelistRule([ALICE], method="withdraw")
    assert rule.evaluate(method_request(EVE, "deposit")).allowed  # not applicable
    assert not rule.evaluate(method_request(EVE, "withdraw")).allowed


def test_blacklist_denies_listed_allows_rest():
    rule = BlacklistRule([EVE])
    assert not rule.evaluate(super_request(EVE)).allowed
    assert rule.evaluate(super_request(ALICE)).allowed


def test_blacklist_dynamic_updates():
    rule = BlacklistRule([])
    assert rule.evaluate(super_request(EVE)).allowed
    rule.add(EVE)
    assert not rule.evaluate(super_request(EVE)).allowed


def test_argument_rule_whitelist_and_blacklist():
    rule = ArgumentRule("amount", allowed={1, 2, 3})
    assert rule.evaluate(argument_request(ALICE, arguments={"amount": 2})).allowed
    assert not rule.evaluate(argument_request(ALICE, arguments={"amount": 99})).allowed

    deny_rule = ArgumentRule("target", denied={EVE})
    assert not deny_rule.evaluate(argument_request(ALICE, arguments={"target": EVE})).allowed
    assert deny_rule.evaluate(argument_request(ALICE, arguments={"target": BOB})).allowed


def test_argument_rule_ignores_non_argument_tokens_and_absent_args():
    rule = ArgumentRule("amount", allowed={1})
    assert rule.evaluate(method_request(ALICE)).allowed
    assert rule.evaluate(argument_request(ALICE, arguments={"other": 5})).allowed


def test_argument_rule_method_scoping():
    rule = ArgumentRule("amount", allowed={1}, method="submit")
    assert not rule.evaluate(argument_request(ALICE, "submit", {"amount": 9})).allowed
    assert rule.evaluate(argument_request(ALICE, "other", {"amount": 9})).allowed


def test_predicate_rule():
    rule = PredicateRule(lambda request: request.client == ALICE, name="only-alice")
    assert rule.evaluate(super_request(ALICE)).allowed
    decision = rule.evaluate(super_request(BOB))
    assert not decision.allowed
    assert "only-alice" in decision.reason


def test_runtime_verification_rule_accepts_bool_and_decision():
    class BoolTool:
        def check(self, request):
            return request.client == ALICE

    class DecisionTool:
        def check(self, request):
            return AccessDecision.deny("simulated failure")

    assert RuntimeVerificationRule(BoolTool()).evaluate(super_request(ALICE)).allowed
    assert not RuntimeVerificationRule(BoolTool()).evaluate(super_request(EVE)).allowed
    assert not RuntimeVerificationRule(DecisionTool()).evaluate(super_request(ALICE)).allowed


# --- rule sets ---------------------------------------------------------------------------


def test_empty_ruleset_allows_everything():
    assert RuleSet().evaluate(super_request(EVE)).allowed


def test_ruleset_scopes_rules_per_token_type():
    ruleset = RuleSet()
    ruleset.add_rule(WhitelistRule([ALICE]), TokenType.SUPER)
    assert not ruleset.evaluate(super_request(EVE)).allowed
    # Method tokens have no rules configured, so they pass.
    assert ruleset.evaluate(method_request(EVE)).allowed


def test_ruleset_global_rules_apply_to_all_types():
    ruleset = RuleSet()
    ruleset.add_rule(BlacklistRule([EVE]))
    assert not ruleset.evaluate(super_request(EVE)).allowed
    assert not ruleset.evaluate(method_request(EVE)).allowed
    assert not ruleset.evaluate(argument_request(EVE)).allowed
    assert ruleset.evaluate(method_request(ALICE)).allowed


def test_ruleset_all_rules_must_allow():
    ruleset = RuleSet()
    ruleset.add_rule(WhitelistRule([ALICE, EVE]))
    ruleset.add_rule(BlacklistRule([EVE]))
    assert ruleset.evaluate(super_request(ALICE)).allowed
    assert not ruleset.evaluate(super_request(EVE)).allowed


def test_ruleset_remove_rule_by_name():
    ruleset = RuleSet()
    ruleset.add_rule(WhitelistRule([ALICE], name="sender-whitelist"))
    assert not ruleset.evaluate(super_request(EVE)).allowed
    removed = ruleset.remove_rule("sender-whitelist")
    assert removed == 1
    assert ruleset.evaluate(super_request(EVE)).allowed


def test_ruleset_rule_names_listing():
    ruleset = RuleSet()
    ruleset.add_rule(WhitelistRule([ALICE], name="wl"))
    ruleset.add_rule(ArgumentRule("amount", allowed={1}), TokenType.ARGUMENT)
    names = ruleset.rule_names()
    assert "wl" in names
    assert "argument:amount" in names


# --- Fig. 6 configuration ---------------------------------------------------------------------


def fig6_config():
    return {
        "sender": {"whitelist": ["0x" + ALICE.hex(), "0x" + BOB.hex()]},
        "method": {"withdraw": {"blacklist": ["0x" + BOB.hex()]}},
        "argument": {"amount": {"whitelist": [1, 2, 3]}},
    }


def test_from_config_builds_fig6_structure():
    ruleset = RuleSet.from_config(fig6_config())
    # sender whitelist applies everywhere
    assert not ruleset.evaluate(super_request(EVE)).allowed
    assert ruleset.evaluate(super_request(ALICE)).allowed
    # per-method blacklist applies to method tokens of that method
    assert not ruleset.evaluate(method_request(BOB, "withdraw")).allowed
    assert ruleset.evaluate(method_request(BOB, "deposit")).allowed
    # argument whitelist
    assert ruleset.evaluate(argument_request(ALICE, arguments={"amount": 2})).allowed
    assert not ruleset.evaluate(argument_request(ALICE, arguments={"amount": 9})).allowed


def test_config_roundtrip_preserves_policy():
    ruleset = RuleSet.from_config(fig6_config())
    rebuilt = RuleSet.from_config(ruleset.to_config())
    for request in [super_request(ALICE), super_request(EVE),
                    method_request(BOB, "withdraw"),
                    argument_request(ALICE, arguments={"amount": 2}),
                    argument_request(ALICE, arguments={"amount": 9})]:
        assert ruleset.evaluate(request).allowed == rebuilt.evaluate(request).allowed
