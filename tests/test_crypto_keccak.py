"""Unit tests for the pure-Python keccak-256 implementation."""

import hashlib

import pytest

from repro.crypto.keccak import keccak256, keccak256_hex

# Known-answer vectors for Ethereum's keccak-256 (not NIST SHA3-256).
KNOWN_VECTORS = {
    b"": "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
    b"abc": "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
    b"hello": "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8",
    b"testing": "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02",
    b"The quick brown fox jumps over the lazy dog":
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
}


@pytest.mark.parametrize("message,expected", sorted(KNOWN_VECTORS.items()))
def test_known_vectors(message, expected):
    assert keccak256(message).hex() == expected


def test_digest_length_is_32_bytes():
    assert len(keccak256(b"x")) == 32


def test_differs_from_nist_sha3_256():
    # Ethereum keccak uses the original 0x01 padding, so it must NOT match
    # hashlib's NIST SHA3-256 on non-empty input.
    assert keccak256(b"abc") != hashlib.sha3_256(b"abc").digest()


def test_deterministic():
    assert keccak256(b"same input") == keccak256(b"same input")


def test_single_bit_avalanche():
    a = keccak256(b"\x00" * 64)
    b = keccak256(b"\x00" * 63 + b"\x01")
    differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    # Roughly half the 256 output bits should flip.
    assert differing_bits > 80


@pytest.mark.parametrize("length", [0, 1, 31, 32, 33, 135, 136, 137, 272, 1000])
def test_all_block_boundary_lengths(length):
    # Lengths straddling the 136-byte rate must all hash without error and
    # produce distinct digests.
    digest = keccak256(b"a" * length)
    assert len(digest) == 32
    assert digest != keccak256(b"a" * (length + 1))


def test_multiblock_known_vector():
    # 200 'a' characters spans two absorb blocks.
    assert (
        keccak256(b"a" * 200).hex()
        == keccak256_hex(b"a" * 200)
    )
    assert keccak256(b"a" * 200) != keccak256(b"a" * 199)


def test_rejects_non_bytes():
    with pytest.raises(TypeError):
        keccak256("a string")  # type: ignore[arg-type]


def test_accepts_bytearray():
    assert keccak256(bytearray(b"abc")) == keccak256(b"abc")


def test_hex_helper_matches_bytes():
    assert keccak256_hex(b"xyz") == keccak256(b"xyz").hex()
