"""Unit tests for address handling and calldata/ABI encoding."""

import pytest

from repro.chain import abi
from repro.chain.address import (
    ZERO_ADDRESS,
    address_hex,
    contract_address,
    is_address,
    to_address,
)
from repro.core.call_chain import TokenBundle
from repro.crypto.keys import KeyPair


# --- addresses ----------------------------------------------------------------


def test_to_address_from_hex_and_back():
    hex_addr = "0x" + "ab" * 20
    addr = to_address(hex_addr)
    assert len(addr) == 20
    assert address_hex(addr) == hex_addr


def test_to_address_accepts_bytes_and_int():
    assert to_address(b"\x01" * 20) == b"\x01" * 20
    assert to_address(1) == b"\x00" * 19 + b"\x01"


def test_to_address_rejects_wrong_lengths():
    with pytest.raises(ValueError):
        to_address(b"\x01" * 19)
    with pytest.raises(ValueError):
        to_address("0x" + "ab" * 19)
    with pytest.raises(TypeError):
        to_address(3.14)  # type: ignore[arg-type]


def test_zero_address_shape():
    assert is_address(ZERO_ADDRESS)
    assert ZERO_ADDRESS == b"\x00" * 20


def test_contract_address_depends_on_creator_and_nonce():
    creator = KeyPair.from_seed("creator").address
    a0 = contract_address(creator, 0)
    a1 = contract_address(creator, 1)
    other = contract_address(KeyPair.from_seed("other").address, 0)
    assert len(a0) == 20
    assert a0 != a1
    assert a0 != other


def test_is_address_rejects_non_bytes():
    assert not is_address("0x" + "ab" * 20)
    assert not is_address(b"\x01" * 21)


# --- method selectors and calldata -----------------------------------------------


def test_selector_is_first_four_bytes_of_keccak():
    selector = abi.method_selector("withdraw")
    assert len(selector) == 4
    assert selector == abi.method_selector("withdraw")
    assert selector != abi.method_selector("withdraw2")


def test_encode_call_starts_with_selector():
    calldata = abi.encode_call("submit", (5,), {"memo": "hi"})
    assert calldata[:4] == abi.method_selector("submit")
    assert abi.decode_selector(calldata) == abi.method_selector("submit")


def test_decode_selector_rejects_short_calldata():
    with pytest.raises(ValueError):
        abi.decode_selector(b"\x01\x02")


def test_encoding_is_argument_sensitive():
    base = abi.encode_call("submit", (5,))
    assert abi.encode_call("submit", (6,)) != base
    assert abi.encode_call("submit", (5,), {"memo": "x"}) != base


def test_encoding_ints_bools_none():
    assert len(abi.encode_arguments((7,), {})) == 32
    assert abi.encode_arguments((True,), {}) != abi.encode_arguments((False,), {})
    assert abi.encode_arguments((None,), {}) == b"\x00" * 32


def test_encoding_negative_int_uses_twos_complement():
    encoded = abi.encode_arguments((-1,), {})
    assert encoded == b"\xff" * 32


def test_encoding_addresses_are_padded_to_word():
    addr = KeyPair.from_seed("x").address
    encoded = abi.encode_arguments((addr,), {})
    assert len(encoded) == 32
    assert encoded.endswith(addr)


def test_encoding_bytes_and_strings_length_prefixed():
    encoded = abi.encode_arguments((b"\x01\x02\x03",), {})
    assert len(encoded) == 64  # 32-byte length + one padded word
    assert abi.encode_arguments(("abc",), {}) == abi.encode_arguments((b"abc",), {})


def test_encoding_kwargs_is_order_insensitive():
    a = abi.encode_arguments((), {"b": 2, "a": 1})
    b = abi.encode_arguments((), {"a": 1, "b": 2})
    assert a == b


def test_encoding_lists():
    encoded = abi.encode_arguments(([1, 2, 3],), {})
    assert len(encoded) == 32 * 4  # length word + 3 elements


def test_encoding_structured_objects_with_to_bytes():
    bundle = TokenBundle()
    encoded = abi.encode_arguments((bundle,), {})
    assert isinstance(encoded, bytes)


def test_encoding_rejects_unsupported_types():
    with pytest.raises(TypeError):
        abi.encode_arguments(({"a": object()},), {})
