"""Tests for workload generators, synthetic traces and the cost model."""

import pytest

from repro.chain import gas
from repro.core.cost import ether_to_usd, gas_to_ether, gas_to_usd, usd
from repro.core.token import TokenType
from repro.crypto.keys import KeyPair
from repro.workloads import (
    PopularContractTrace,
    TokenRequestWorkload,
    WorkloadConfig,
    synthetic_popular_contract_traces,
)
from repro.workloads.generator import batch_size_sweep
from repro.workloads.traces import average_peak_rate

CONTRACT = KeyPair.from_seed("wl-contract").address
CLIENTS = [KeyPair.from_seed(f"wl-client-{i}").address for i in range(4)]


# --- workload generator ---------------------------------------------------------------


def test_workload_generates_valid_requests_of_each_type():
    for token_type in TokenType:
        workload = TokenRequestWorkload(
            WorkloadConfig(contract=CONTRACT, clients=CLIENTS, token_type=token_type)
        )
        batch = workload.batch(20)
        assert len(batch) == 20
        assert all(r.token_type is token_type for r in batch)
        assert all(r.contract == CONTRACT for r in batch)
        assert all(r.client in CLIENTS for r in batch)


def test_workload_argument_requests_draw_from_argument_space():
    workload = TokenRequestWorkload(
        WorkloadConfig(
            contract=CONTRACT,
            clients=CLIENTS,
            token_type=TokenType.ARGUMENT,
            argument_space={"amount": [1, 2, 3]},
        )
    )
    assert all(r.arguments["amount"] in (1, 2, 3) for r in workload.batch(30))


def test_workload_is_deterministic_per_seed():
    def clients_of(seed):
        workload = TokenRequestWorkload(
            WorkloadConfig(contract=CONTRACT, clients=CLIENTS, seed=seed)
        )
        return [r.client for r in workload.batch(10)]

    assert clients_of(3) == clients_of(3)
    assert clients_of(3) != clients_of(4)


def test_workload_stream_and_one_time_flag():
    workload = TokenRequestWorkload(
        WorkloadConfig(contract=CONTRACT, clients=CLIENTS, one_time=True)
    )
    requests = list(workload.stream(5))
    assert len(requests) == 5
    assert all(r.one_time for r in requests)


def test_batch_size_sweep_matches_fig9_axis():
    assert batch_size_sweep(5) == [1, 10, 100, 1000, 10_000, 100_000]
    assert batch_size_sweep(2) == [1, 10, 100]


# --- synthetic traces (Tab. IV sizing input) -----------------------------------------------------


@pytest.fixture(scope="module")
def traces():
    return synthetic_popular_contract_traces(duration_seconds=1800, seed=7)


def test_ten_popular_contracts_are_modelled(traces):
    assert len(traces) == 10
    names = {t.name for t in traces}
    assert "CryptoKitties" in names


def test_average_peak_is_about_35_tx_per_second(traces):
    assert average_peak_rate(traces) == pytest.approx(35.0, abs=2.0)


def test_cryptokitties_peak_is_the_highest(traces):
    kitties = next(t for t in traces if t.name == "CryptoKitties")
    assert kitties.peak_tx_per_second == max(t.peak_tx_per_second for t in traces)
    assert kitties.peak_tx_per_second == pytest.approx(48.0, abs=1.0)


def test_traces_have_positive_traffic_and_bursts(traces):
    for trace in traces:
        assert trace.duration_seconds == 1800
        assert trace.total_transactions > 0
        assert trace.observed_peak >= 1
        assert trace.average_rate() < trace.peak_tx_per_second


def test_trace_peak_window_rate_between_average_and_peak(traces):
    trace = traces[0]
    window = trace.peak_window_rate(60)
    assert trace.average_rate() <= window + 1e-9
    assert window <= trace.observed_peak


def test_traces_deterministic_per_seed():
    a = synthetic_popular_contract_traces(duration_seconds=300, seed=1)
    b = synthetic_popular_contract_traces(duration_seconds=300, seed=1)
    c = synthetic_popular_contract_traces(duration_seconds=300, seed=2)
    assert [t.arrivals for t in a] == [t.arrivals for t in b]
    assert [t.arrivals for t in a] != [t.arrivals for t in c]


def test_empty_trace_edge_cases():
    trace = PopularContractTrace("empty", 1.0, [])
    assert trace.average_rate() == 0.0
    assert trace.peak_window_rate() == 0.0
    assert trace.observed_peak == 0
    assert average_peak_rate([]) == 0.0


# --- cost model --------------------------------------------------------------------------------------


def test_gas_to_ether_and_usd_scaling():
    assert gas_to_ether(0) == 0
    assert gas_to_usd(2_000_000) == pytest.approx(2 * gas_to_usd(1_000_000))
    assert ether_to_usd(1.0) == gas.ETH_USD


def test_paper_table2_conversion_anchors():
    # Tab. II reports ~$0.04 for ~166k gas and ~$0.10 for ~416k gas.
    assert gas_to_usd(165_957) == pytest.approx(0.041, abs=0.02)
    assert gas_to_usd(416_248) == pytest.approx(0.101, abs=0.04)


def test_paper_table4_deployment_anchor():
    # Tab. IV: 8 849 037 gas is about two dollars.
    assert gas_to_usd(8_849_037) == pytest.approx(2.14, abs=0.8)


def test_usd_formatting():
    assert usd(0.0412) == "0.041"
    assert usd(2.1399) == "2.140"
