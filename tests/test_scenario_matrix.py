"""The adversarial scenario matrix: smoke cells inline, the full grid slow.

Every cell is a (workload x fault) pairing run end-to-end through the
issuance stack, the mempool and the chain, with the SMACS safety invariants
(no one-time index accepted twice, no token from an untrusted signer,
per-tenant fairness, clean mempool books) asserted inside ``run_cell`` --
a cell that returns at all has already survived them.  These tests pin the
matrix's shape, determinism and the fault signal each plan must produce.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan
from repro.workloads.matrix import (
    SMOKE_CELLS,
    CellSpec,
    default_cells,
    main,
    run_cell,
    run_matrix,
)


def _cells_by_name():
    return {spec.name: spec for spec in default_cells()}


# --- matrix shape -------------------------------------------------------------------


def test_default_matrix_is_wide_enough():
    specs = default_cells()
    names = [spec.name for spec in specs]
    assert len(names) == len(set(names))  # cell names are unique
    assert len(specs) >= 20
    byzantine = [spec for spec in specs if spec.fault().byzantine]
    assert len(byzantine) >= 3
    workloads = {spec.workload for spec in specs}
    assert {"flash-sale", "replay-storm", "fan-out", "state-stress",
            "expiry-avalanche", "rule-churn", "multi-tenant"} <= workloads
    assert set(SMOKE_CELLS) <= set(names)


def test_every_workload_has_a_no_fault_baseline():
    specs = default_cells()
    workloads = {spec.workload for spec in specs}
    baselines = {spec.workload for spec in specs if spec.fault_name == "none"}
    assert baselines == workloads


# --- smoke cells (one per workload family, the CI lane) -----------------------------


def test_smoke_flash_sale_baseline_runs_clean():
    record = run_cell(_cells_by_name()["flash-sale/none"])
    assert record["invariants"]["no_duplicate_one_time_index"]
    assert record["invariants"]["trusted_signer_only"]
    assert record["token_txs_succeeded"] > 0
    assert record["forged_attempted"] >= 1  # the canary rode along
    assert record["mempool_accounting"]["accounting_underflows"] == 0


def test_smoke_corrupt_frames_cell_resends_and_survives():
    record = run_cell(_cells_by_name()["replay-storm/corrupt-frames"])
    assert record["fault_observations"]["frames_corrupted"] > 0
    assert record["frame_resends"] > 0  # damaged frames were re-sent, not lost
    assert record["token_txs_succeeded"] > 0


def test_smoke_stale_leader_cell_proves_zombie_answers_inert():
    record = run_cell(_cells_by_name()["fan-out/stale-leader"])
    observed = record["fault_observations"]
    assert observed["zombie_answers"] > 0  # the deposed leader kept talking
    assert observed["zombie_results"] == 0  # and none of it ever committed
    assert record["token_txs_succeeded"] > 0


def test_smoke_equivocation_cell_screens_duplicate_indexes():
    record = run_cell(_cells_by_name()["state-stress/equivocating-counter"])
    observed = record["fault_observations"]
    assert observed["duplicates_injected"] > 0
    # The invariant held *because* the duplicates were screened before the
    # chain: the pool's reservation table rejected them at admission.
    assert record["invariants"]["no_duplicate_one_time_index"]
    assert "duplicate one-time index in pool" in record["rejected"]


def test_smoke_untrusted_signer_cell_rejects_every_forgery():
    record = run_cell(_cells_by_name()["multi-tenant/untrusted-signer"])
    assert record["forged_attempted"] > record["batches"]  # plan + canary
    assert record["invariants"]["trusted_signer_only"]
    fairness = record["fairness"]
    assert max(fairness["admitted"]) - min(fairness["admitted"]) <= 1
    assert sum(fairness["limited"]) > 0


def test_smoke_crash_restart_cell_recovers_and_resumes():
    """The tentpole cell: kill the node at a commit fsync, recover, resume."""
    record = run_cell(_cells_by_name()["flash-sale/crash-restart"])
    assert record["fault_kind"] == "disk"
    assert record["fault_observations"]["crashes"] == 1
    recovery = record["recovery"]
    assert recovery["blocks_recovered"] >= 1  # a durable pre-crash prefix
    assert recovery["readmitted"] > 0  # the crashed batch came back from disk
    assert recovery["signatures_primed"] > 0  # sigcache re-primed on restart
    assert recovery["max_one_time_index"] >= 0
    # invariants held ACROSS the restart boundary (asserted inside run_cell)
    assert record["invariants"]["no_duplicate_one_time_index"]
    assert record["invariants"]["crash_recovered"]
    assert record["invariants"]["state_root_matches_recomputation"]
    # no work was lost: every issued token landed exactly once
    assert record["one_time_accepted"] == record["tokens_issued"]


def test_smoke_torn_wal_cell_truncates_and_recovers():
    record = run_cell(_cells_by_name()["state-stress/torn-wal-restart"])
    assert record["fault_observations"]["disk_fault_mode"] == "torn-write"
    assert record["recovery"]["wal_torn_tail"]  # replay repaired a torn tail
    assert record["recovery"]["wal_truncated_bytes"] > 0
    assert record["invariants"]["crash_recovered"]
    assert record["invariants"]["state_root_matches_recomputation"]


def test_crash_restart_cells_are_deterministic():
    spec = _cells_by_name()["flash-sale/crash-restart"]
    assert run_cell(spec) == run_cell(spec)


def test_expiry_avalanche_slides_the_bitmap_window():
    record = run_cell(_cells_by_name()["expiry-avalanche/none"])
    assert record["bitmap_window"]["start"] > 0  # the whole window moved
    assert record["token_txs_failed_onchain"] > 0  # TOCTOU casualties
    assert record["token_txs_succeeded"] > 0  # long-lived traffic unharmed


# --- determinism and the CLI --------------------------------------------------------


def test_cells_are_deterministic():
    spec = _cells_by_name()["flash-sale/none"]
    assert run_cell(spec) == run_cell(spec)


def test_cli_writes_the_selected_cells(tmp_path):
    out = tmp_path / "scenarios.json"
    code = main(["--cells", "flash-sale/none", "--out", str(out), "--quiet"])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "scenarios"
    assert [cell["cell"] for cell in payload["cells"]] == ["flash-sale/none"]
    assert payload["summary"]["forged_accepted"] == 0


def test_cli_rejects_unknown_cells():
    with pytest.raises(KeyError):
        main(["--cells", "no-such/cell", "--quiet"])


def test_custom_cell_spec_runs_outside_the_default_grid():
    spec = CellSpec(
        workload="flash-sale",
        fault=FaultPlan,
        fault_name="none",
        batches=2,
        batch_size=4,
        seed=99,
    )
    record = run_cell(spec)
    assert record["cell"] == "flash-sale/none"
    assert record["batches"] == 2


# --- the full grid (slow lane; CI runs it separately) -------------------------------


@pytest.mark.slow
def test_full_matrix_all_invariants_hold():
    report = run_matrix()
    summary = report["summary"]
    assert summary["cells_run"] >= 20
    assert summary["byzantine_cells"] >= 3
    assert summary["forged_accepted"] == 0
    for record in report["cells"]:
        for invariant, held in record["invariants"].items():
            assert held, f"{record['cell']}: invariant {invariant} failed"
        assert record["mempool_accounting"]["accounting_underflows"] == 0


@pytest.mark.slow
def test_full_matrix_matches_committed_baseline():
    committed = json.loads(
        open("benchmarks/baselines/BENCH_scenarios.json").read()
    )
    fresh = run_matrix()
    assert fresh == committed
