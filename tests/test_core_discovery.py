"""Service discovery across every issuer stack + the repro.api surface snapshot.

The §VII-B registry was only exercised with a bare ``TokenService``; these
tests register and resolve every :class:`~repro.api.protocol.TokenIssuer`
shape -- factory-built stacks, middleware-wrapped services and wire-level
gateway clients -- and the API-stability snapshot pins the public symbols of
:mod:`repro.api` so the surface only grows deliberately.
"""

from __future__ import annotations

import pytest

import repro.api
from repro.api import ServiceGateway, build_service, conforms
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import ClientWallet, OwnerWallet, TokenType
from repro.core.acr import RuleSet
from repro.core.discovery import ServiceDiscovery
from repro.core.wallet import NoTokenServiceKnown
from repro.crypto.keys import KeyPair


@pytest.fixture
def discovery(chain):
    return ServiceDiscovery(chain)


def _deploy_for(owner, issuer, url):
    receipt = OwnerWallet(owner, issuer).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=1024, ts_url=url
    )
    assert receipt.success, receipt.error
    return receipt.return_value


@pytest.mark.parametrize("profile", ["serial", "sharded", "replicated"])
def test_discovery_resolves_every_issuer_profile(chain, owner, alice, discovery, profile):
    url = f"https://{profile}.ts.example.org"
    issuer = build_service(
        profile,
        keypair=KeyPair.from_seed(f"disc-{profile}"),
        rules=RuleSet(),
        clock=chain.clock,
        index_block_size=8,
    )
    assert conforms(issuer)
    discovery.publish(url, issuer)
    contract = _deploy_for(owner, issuer, url)

    assert discovery.url_for(contract.this) == url
    assert discovery.resolve(contract.this) is issuer

    wallet = ClientWallet(alice, discovery=discovery)
    receipt = wallet.call_with_token(
        contract, "submit", amount=1, token_type=TokenType.METHOD, one_time=True
    )
    assert receipt.success, receipt.error
    assert chain.read(contract, "entries") == 1


def test_discovery_resolves_gateway_clients(chain, owner, alice, discovery):
    """A contract's published URL doubles as the gateway route: discovery
    hands back a wire-level client and the wallet cannot tell the difference."""
    url = "https://gw.ts.example.org"
    issuer = build_service(
        "sharded",
        keypair=KeyPair.from_seed("disc-gateway"),
        rules=RuleSet(),
        clock=chain.clock,
        index_block_size=8,
    )
    gateway = ServiceGateway()
    gateway.register(url, issuer)
    client = gateway.client_for(url)
    discovery.publish(url, client)

    contract = _deploy_for(owner, issuer, url)
    resolved = discovery.resolve(contract.this)
    assert resolved is client
    assert conforms(resolved)
    assert resolved.address == issuer.address

    wallet = ClientWallet(alice, discovery=discovery)
    receipt = wallet.call_with_token(contract, "submit", amount=2,
                                     token_type=TokenType.METHOD)
    assert receipt.success, receipt.error


def test_discovery_misses_stay_explicit(chain, owner, alice, discovery, token_service):
    contract = _deploy_for(owner, token_service, "https://unpublished.example")
    assert discovery.url_for(contract.this) == "https://unpublished.example"
    assert discovery.resolve(contract.this) is None  # URL published, no issuer
    unlabelled = OwnerWallet(owner, token_service).deploy_protected(
        ProtectedRecorder
    ).return_value
    assert discovery.url_for(unlabelled.this) is None

    wallet = ClientWallet(alice, discovery=discovery)
    with pytest.raises(NoTokenServiceKnown) as excinfo:
        wallet.request_token(contract, TokenType.SUPER)
    assert excinfo.value.code is repro.api.ErrorCode.UNKNOWN_ROUTE


def test_dialer_hook_resolves_remote_urls_and_caches(chain, owner, token_service):
    """A directory miss consults the dialer once; the result is cached.

    The stock dialer is :func:`repro.api.transport.dial` (exercised over real
    sockets in ``test_api_transport.py``); here a fake keeps the layering
    unit-testable without opening a port.
    """
    url = "tcp://ts.remote.example:8821"
    contract = _deploy_for(owner, token_service, url)
    dialled = []

    def fake_dial(target):
        dialled.append(target)
        return token_service if target.startswith("tcp://") else None

    discovery = ServiceDiscovery(chain, dialer=fake_dial)
    assert discovery.resolve(contract.this) is token_service
    assert discovery.resolve(contract.this) is token_service
    assert dialled == [url]  # second resolve hit the directory cache
    assert discovery.known_urls() == [url]

    # A dialer that declines (returns None) leaves the miss explicit.
    declined = _deploy_for(owner, token_service, "https://not-ours.example")
    assert discovery.resolve(declined.this) is None
    # Local directory entries always win over the dialer.
    local = ServiceDiscovery(chain, dialer=lambda target: pytest.fail("dialled"))
    local.publish(url, token_service)
    assert local.resolve(contract.this) is token_service


def test_known_urls_sorted(chain, discovery, token_service):
    for url in ("https://b.example", "https://a.example"):
        discovery.publish(url, token_service)
    assert discovery.known_urls() == ["https://a.example", "https://b.example"]


# --- API-stability snapshot ---------------------------------------------------------

#: The public surface of repro.api.  Growing it is fine -- update the
#: snapshot deliberately; renaming or removing a symbol is a breaking change.
API_SURFACE_SNAPSHOT = [
    "AdmissionController",
    "Audit",
    "Backoff",
    "CODECS",
    "CODEC_BINARY",
    "CODEC_JSON",
    "CircuitBreaker",
    "CounterTimeout",
    "DEFAULT_RETRY_CODES",
    "ErrorCode",
    "GatewayClient",
    "GatewayServer",
    "InProcessTransport",
    "IssuerMiddleware",
    "Metrics",
    "NoReplicaAvailable",
    "PROFILES",
    "RETRYABLE_CODES",
    "RateLimiter",
    "RetryBudget",
    "RetryFailover",
    "ServiceGateway",
    "SignatureCachePrimer",
    "SmacsError",
    "TcpTransport",
    "TokenBucket",
    "TokenDenied",
    "TokenIssuer",
    "Transport",
    "WIRE_VERSION",
    "build_service",
    "classify",
    "conforms",
    "connect",
    "dial",
    "issue_one",
    "serve",
    "try_issue_one",
    "unwrap",
]


def test_api_public_surface_matches_snapshot():
    assert sorted(repro.api.__all__) == API_SURFACE_SNAPSHOT
    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None, name


#: The public surface of repro.obs -- the observability subsystem.  Pinned
#: like repro.api: additions update the snapshot, removals are breaking.
OBS_SURFACE_SNAPSHOT = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "STAGES",
    "Span",
    "TraceContext",
    "Tracer",
    "disable",
    "enable",
    "merge_histogram_snapshots",
    "observability",
    "set_observability",
]


def test_obs_public_surface_matches_snapshot():
    import repro.obs

    assert sorted(repro.obs.__all__) == OBS_SURFACE_SNAPSHOT
    for name in repro.obs.__all__:
        assert getattr(repro.obs, name, None) is not None, name
    # Layering: the observability package must stay importable without the
    # api/pipeline/storage layers (they depend on it, never the reverse).
    import pathlib
    import subprocess
    import sys

    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    probe = (
        "import sys, repro.obs; "
        "banned = [m for m in sys.modules if m.startswith(('repro.api', "
        "'repro.pipeline', 'repro.storage'))]; "
        "sys.exit(1 if banned else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe], env={"PYTHONPATH": str(src)}
    )
    assert result.returncode == 0, "repro.obs pulled in a higher layer"


def test_api_error_codes_are_stable():
    """The wire-visible error codes are part of the public contract."""
    assert {code.value for code in repro.api.ErrorCode} == {
        "DENIED",
        "COUNTER_TIMEOUT",
        "NO_REPLICA",
        "EXPIRED_RULESET",
        "MALFORMED_REQUEST",
        "UNKNOWN_ROUTE",
        "RATE_LIMITED",
        "UNSUPPORTED",
        "UNAVAILABLE",
        "DEADLINE_EXCEEDED",
        "OVERLOADED",
        "INTERNAL",
    }
    # str-valued enum: codes serialise as their own names.
    for code in repro.api.ErrorCode:
        assert code.value == code.name


def test_legacy_exceptions_are_taxonomy_subtypes():
    """`except CounterTimeout` / `except TokenDenied` keep working AND the
    same objects carry stable codes through results and the wire."""
    from repro.api import (
        CounterTimeout,
        ErrorCode,
        NoReplicaAvailable,
        SmacsError,
        TokenDenied,
    )
    from repro.core.acr import AccessDecision

    assert issubclass(CounterTimeout, SmacsError)
    assert issubclass(CounterTimeout, RuntimeError)  # legacy handlers
    assert CounterTimeout("no quorum").code is ErrorCode.COUNTER_TIMEOUT
    assert CounterTimeout("no quorum").retryable
    assert issubclass(NoReplicaAvailable, SmacsError)
    assert NoReplicaAvailable("down").code is ErrorCode.NO_REPLICA
    denied = TokenDenied(AccessDecision.deny("nope"))
    assert denied.code is ErrorCode.DENIED and not denied.retryable
