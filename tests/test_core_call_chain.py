"""Tests for call-chain token bundles (§IV-D, Fig. 5)."""

import pytest

from repro.contracts.call_chain_demo import build_call_chain
from repro.core import ClientWallet, TokenBundle, TokenService, TokenType
from repro.core.call_chain import normalise_token_argument
from repro.core.token import TOKEN_SIZE, Token
from repro.crypto.keys import KeyPair


@pytest.fixture
def services(chain):
    return [
        TokenService(keypair=KeyPair.from_seed(f"chain-ts-{i}"), clock=chain.clock,
                     label=f"ts-{i}")
        for i in range(3)
    ]


@pytest.fixture
def chain_contracts(chain, owner, services):
    return build_call_chain(owner, services)


@pytest.fixture
def client_wallet(alice, chain_contracts, services):
    wallet = ClientWallet(alice)
    for contract, service in zip(chain_contracts, services):
        wallet.register_service(contract, service)
    return wallet


def _bundle_for(wallet, contracts):
    return wallet.acquire_bundle(
        [{"contract": c, "method": "invoke", "token_type": TokenType.METHOD} for c in contracts]
    )


# --- TokenBundle unit behaviour -------------------------------------------------------


def test_bundle_roundtrip_and_lookup(chain_contracts, client_wallet):
    bundle = _bundle_for(client_wallet, chain_contracts)
    assert len(bundle) == 3
    raw = bundle.to_bytes()
    assert len(raw) == 3 * (20 + TOKEN_SIZE)
    decoded = TokenBundle.from_bytes(raw)
    for contract in chain_contracts:
        assert decoded.token_for(contract.this) == bundle.token_for(contract.this)
    assert decoded.token_for(b"\x99" * 20) is None


def test_bundle_rejects_malformed_entries():
    with pytest.raises(ValueError):
        TokenBundle().add(b"\x01" * 19, b"\x00" * TOKEN_SIZE)
    with pytest.raises(ValueError):
        TokenBundle().add(b"\x01" * 20, b"\x00" * 10)
    with pytest.raises(ValueError):
        TokenBundle.from_bytes(b"\x00" * 50)


def test_bundle_accepts_token_objects(chain_contracts, client_wallet):
    token = client_wallet.request_token(chain_contracts[0], TokenType.METHOD, "invoke")
    bundle = TokenBundle().add(chain_contracts[0].this, token)
    assert Token.from_bytes(bundle.token_for(chain_contracts[0].this)) == token


def test_normalise_token_argument_variants(chain_contracts, client_wallet):
    token = client_wallet.request_token(chain_contracts[0], TokenType.METHOD, "invoke")
    assert normalise_token_argument(None) is None
    assert normalise_token_argument(token) == token.to_bytes()
    assert normalise_token_argument(token.to_bytes()) == token.to_bytes()
    bundle = TokenBundle().add(chain_contracts[0].this, token)
    assert isinstance(normalise_token_argument(bundle.to_bytes()), TokenBundle)
    with pytest.raises(TypeError):
        normalise_token_argument(12345)


def test_bundle_describe(chain_contracts, client_wallet):
    bundle = _bundle_for(client_wallet, chain_contracts)
    assert bundle.describe().count("||") == 2


# --- end-to-end call chains ----------------------------------------------------------------


def test_depth_three_call_chain_with_full_bundle(chain, alice, chain_contracts, client_wallet):
    bundle = _bundle_for(client_wallet, chain_contracts)
    receipt = client_wallet.call_with_bundle(chain_contracts[0], "invoke", bundle, 1)
    assert receipt.success, receipt.error
    assert receipt.return_value == 3  # depth reached SCC
    for contract in chain_contracts:
        assert chain.read(contract, "invocations") == 1


def test_missing_downstream_token_blocks_the_chain(chain, alice, chain_contracts, client_wallet):
    # Token only for SCA and SCB: SCC must reject and the whole call reverts.
    bundle = _bundle_for(client_wallet, chain_contracts[:2])
    receipt = client_wallet.call_with_bundle(chain_contracts[0], "invoke", bundle, 1)
    assert not receipt.success
    for contract in chain_contracts:
        assert chain.read(contract, "invocations") == 0


def test_single_token_is_enough_for_depth_one(chain, alice, services, owner, client_wallet):
    solo = build_call_chain(owner, services[:1])[0]
    service = services[0]
    wallet = ClientWallet(alice, {solo.this: service})
    receipt = wallet.call_with_token(solo, "invoke", 7, token_type=TokenType.METHOD)
    assert receipt.success
    assert chain_read_invocations(solo) == 1


def chain_read_invocations(contract):
    return contract.storage.peek("invocations", 0)


def test_gas_grows_linearly_with_chain_depth(chain, owner, alice):
    """The Tab. III / Fig. 8 shape: aggregated cost is linear in token count."""
    totals = []
    for depth in (1, 2, 3):
        services = [
            TokenService(keypair=KeyPair.from_seed(f"depth{depth}-ts{i}"), clock=chain.clock)
            for i in range(depth)
        ]
        contracts = build_call_chain(owner, services)
        wallet = ClientWallet(alice)
        for contract, service in zip(contracts, services):
            wallet.register_service(contract, service)
        bundle = wallet.acquire_bundle(
            [{"contract": c, "method": "invoke", "token_type": TokenType.METHOD}
             for c in contracts]
        )
        receipt = wallet.call_with_bundle(contracts[0], "invoke", bundle, 1)
        assert receipt.success
        totals.append(receipt.gas_used)
    assert totals[0] < totals[1] < totals[2]
    increment_1 = totals[1] - totals[0]
    increment_2 = totals[2] - totals[1]
    assert increment_2 == pytest.approx(increment_1, rel=0.35)


def test_parse_gas_category_appears_for_bundles(chain, alice, chain_contracts, client_wallet):
    bundle = _bundle_for(client_wallet, chain_contracts)
    receipt = client_wallet.call_with_bundle(chain_contracts[0], "invoke", bundle, 1)
    assert receipt.breakdown("parse") > 0


def test_per_contract_token_services_can_differ(chain, alice, chain_contracts, services,
                                                client_wallet):
    """Each TS is operated independently; a token from the wrong TS fails."""
    wrong_bundle = TokenBundle()
    # Ask ts-1 (the SCB service) for a token naming SCA as the contract.
    from repro.core.token_request import TokenRequest

    bad_token = services[1].issue_token(
        TokenRequest.method_token(chain_contracts[0].this, alice.address, "invoke")
    )
    wrong_bundle.add(chain_contracts[0].this, bad_token)
    receipt = client_wallet.call_with_bundle(chain_contracts[0], "invoke", wrong_bundle, 1)
    assert not receipt.success
