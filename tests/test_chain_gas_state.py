"""Unit tests for the gas meter/schedule and the world state."""

import pytest

from repro.chain import gas
from repro.chain.errors import OutOfGas
from repro.chain.gas import GasMeter, calldata_cost, charging_category, keccak_cost
from repro.chain.state import WorldState
from repro.crypto.keys import KeyPair


# --- gas schedule helpers ------------------------------------------------------


def test_calldata_cost_zero_vs_nonzero_bytes():
    assert calldata_cost(b"\x00" * 10) == 10 * gas.CALLDATA_ZERO_BYTE
    assert calldata_cost(b"\x01" * 10) == 10 * gas.CALLDATA_NONZERO_BYTE
    assert calldata_cost(b"\x00\x01") == gas.CALLDATA_ZERO_BYTE + gas.CALLDATA_NONZERO_BYTE


def test_keccak_cost_per_word():
    assert keccak_cost(0) == gas.KECCAK_BASE
    assert keccak_cost(32) == gas.KECCAK_BASE + gas.KECCAK_PER_WORD
    assert keccak_cost(33) == gas.KECCAK_BASE + 2 * gas.KECCAK_PER_WORD


def test_usd_conversion_consistent_with_paper_scale():
    from repro.core.cost import gas_to_usd

    # Tab. II: ~166k gas should be a few cents.
    usd = gas_to_usd(165_957)
    assert 0.02 < usd < 0.08


# --- gas meter --------------------------------------------------------------------


def test_meter_accumulates_and_reports_remaining():
    meter = GasMeter(gas_limit=1000)
    meter.charge(300)
    meter.charge(200)
    assert meter.gas_used == 500
    assert meter.gas_remaining == 500


def test_meter_raises_out_of_gas():
    meter = GasMeter(gas_limit=100)
    with pytest.raises(OutOfGas):
        meter.charge(101)


def test_meter_rejects_negative_charge():
    meter = GasMeter(gas_limit=100)
    with pytest.raises(ValueError):
        meter.charge(-1)


def test_meter_category_breakdown():
    meter = GasMeter(gas_limit=10_000)
    meter.charge(100)
    with charging_category(meter, "verify"):
        meter.charge(200)
        with charging_category(meter, "bitmap"):
            meter.charge(50)
        meter.charge(25)
    meter.charge(10)
    assert meter.breakdown == {"misc": 110, "verify": 225, "bitmap": 50}
    assert meter.gas_used == 385


def test_meter_explicit_category_overrides_stack():
    meter = GasMeter(gas_limit=1000)
    with charging_category(meter, "verify"):
        meter.charge(10, category="parse")
    assert meter.breakdown == {"parse": 10}


def test_meter_cannot_pop_base_category():
    meter = GasMeter(gas_limit=10)
    with pytest.raises(RuntimeError):
        meter.pop_category()


def test_meter_refund_is_capped_at_one_fifth():
    meter = GasMeter(gas_limit=100_000)
    meter.charge(50_000)
    meter.add_refund(40_000)
    assert meter.finalize() == 40_000  # refund capped at 10 000


# --- world state ---------------------------------------------------------------------


@pytest.fixture
def state():
    return WorldState()


@pytest.fixture
def addr():
    return KeyPair.from_seed("state-account").address


def test_balances_and_nonces(state, addr):
    assert state.balance_of(addr) == 0
    state.add_balance(addr, 100)
    state.sub_balance(addr, 40)
    assert state.balance_of(addr) == 60
    assert state.nonce_of(addr) == 0
    state.increment_nonce(addr)
    assert state.nonce_of(addr) == 1


def test_sub_balance_rejects_overdraft(state, addr):
    with pytest.raises(ValueError):
        state.sub_balance(addr, 1)


def test_set_balance_rejects_negative(state, addr):
    with pytest.raises(ValueError):
        state.set_balance(addr, -1)


def test_storage_roundtrip(state, addr):
    state.storage_set(addr, "slot", 42)
    assert state.storage_get(addr, "slot") == 42
    assert state.storage_contains(addr, "slot")
    assert state.storage_slot_count(addr) == 1
    state.storage_delete(addr, "slot")
    assert not state.storage_contains(addr, "slot")
    assert state.storage_get(addr, "slot", "default") == "default"


def test_snapshot_revert_restores_balances_and_storage(state, addr):
    state.add_balance(addr, 10)
    state.storage_set(addr, "k", 1)
    snap = state.snapshot()
    state.add_balance(addr, 90)
    state.storage_set(addr, "k", 2)
    state.storage_set(addr, "new", 3)
    state.revert_to(snap)
    assert state.balance_of(addr) == 10
    assert state.storage_get(addr, "k") == 1
    assert not state.storage_contains(addr, "new")


def test_snapshot_commit_keeps_changes(state, addr):
    snap = state.snapshot()
    state.add_balance(addr, 5)
    state.commit(snap)
    assert state.balance_of(addr) == 5
    with pytest.raises(ValueError):
        state.revert_to(snap)


def test_nested_snapshots(state, addr):
    outer = state.snapshot()
    state.add_balance(addr, 1)
    inner = state.snapshot()
    state.add_balance(addr, 1)
    state.revert_to(inner)
    assert state.balance_of(addr) == 1
    state.revert_to(outer)
    assert state.balance_of(addr) == 0


def test_deep_copy_is_independent(state, addr):
    state.add_balance(addr, 7)
    state.storage_set(addr, "x", [1, 2])
    clone = state.deep_copy()
    clone.add_balance(addr, 1)
    clone.storage_get(addr, "x").append(3)
    assert state.balance_of(addr) == 7
    assert state.storage_get(addr, "x") == [1, 2]


def test_unknown_snapshot_ids_rejected(state):
    with pytest.raises(ValueError):
        state.revert_to(0)
    with pytest.raises(ValueError):
        state.commit(3)
