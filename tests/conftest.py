"""Shared fixtures for the SMACS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import ClientWallet, OwnerWallet, TokenService, TokenType
from repro.core.acr import RuleSet
from repro.crypto.keys import KeyPair

ETHER = 10**18


@pytest.fixture
def chain() -> Blockchain:
    """A fresh auto-mining chain with a deterministic clock."""
    return Blockchain()


@pytest.fixture
def owner(chain):
    return chain.create_account("owner", seed="owner-seed")


@pytest.fixture
def alice(chain):
    return chain.create_account("alice", seed="alice-seed")


@pytest.fixture
def bob(chain):
    return chain.create_account("bob", seed="bob-seed")


@pytest.fixture
def eve(chain):
    """An account that is never whitelisted."""
    return chain.create_account("eve", seed="eve-seed")


@pytest.fixture
def ts_keypair() -> KeyPair:
    return KeyPair.from_seed("token-service-key")


@pytest.fixture
def token_service(chain, ts_keypair) -> TokenService:
    """A permissive Token Service (no rules) sharing the chain clock."""
    return TokenService(keypair=ts_keypair, rules=RuleSet(), clock=chain.clock)


@pytest.fixture
def recorder(chain, owner, token_service):
    """A deployed SMACS-protected ProtectedRecorder with a one-time bitmap."""
    owner_wallet = OwnerWallet(owner, token_service)
    receipt = owner_wallet.deploy_protected(ProtectedRecorder, one_time_bitmap_bits=2048)
    assert receipt.success, receipt.error
    return receipt.return_value


@pytest.fixture
def alice_wallet(alice, recorder, token_service):
    wallet = ClientWallet(alice)
    wallet.register_service(recorder, token_service)
    return wallet


@pytest.fixture
def bob_wallet(bob, recorder, token_service):
    wallet = ClientWallet(bob)
    wallet.register_service(recorder, token_service)
    return wallet


@pytest.fixture
def method_token(alice_wallet, recorder):
    """A method token for ProtectedRecorder.submit issued to alice."""
    return alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
