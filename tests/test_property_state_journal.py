"""Property tests proving the journal ≡ copy-on-snapshot (hypothesis).

Random interleavings of every ``WorldState`` mutation with ``snapshot`` /
``commit`` / ``revert_to`` are applied to the journaled implementation and
to :class:`ReferenceWorldState` in lockstep; after **every** step the two
must agree on the entire world state (accounts, balances, nonces, contract
metadata, storage), on the open-checkpoint count and on whether the step
raised.  A second, EVM-shaped differential drives the Fig. 7 re-entrancy
attack through two otherwise identical chains -- the call shapes that
:meth:`CallTracer.reentrant_frames` detects are exactly the nested
snapshot/commit/revert patterns the journal merge logic must get right.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain
from repro.chain.state import ReferenceWorldState, WorldState
from repro.contracts import Attacker, Bank
from repro.workloads.state_stress import (
    StateStressConfig,
    build_stress_engine,
    run_state_stress,
    state_fingerprint,
)

pytestmark = pytest.mark.slow  # hypothesis-heavy: the CI slow lane

ETHER = 10**18

#: A small, collision-rich pool of addresses and slots maximises interesting
#: interleavings (first-touch journaling, re-created accounts, slot churn).
ADDRESSES = [bytes([i]) * 20 for i in range(1, 5)]
SLOTS = ["a", "b", ("tuple", 1), 7]

_addr = st.sampled_from(ADDRESSES)
_slot = st.sampled_from(SLOTS)
_value = st.integers(min_value=0, max_value=1 << 40)

OPS = st.one_of(
    st.tuples(st.just("snapshot")),
    st.tuples(st.just("commit"), st.floats(0, 1)),
    st.tuples(st.just("revert"), st.floats(0, 1)),
    st.tuples(st.just("set_balance"), _addr, _value),
    st.tuples(st.just("add_balance"), _addr, _value),
    st.tuples(st.just("sub_balance"), _addr, _value),
    st.tuples(st.just("increment_nonce"), _addr),
    st.tuples(st.just("set_is_contract"), _addr, st.booleans()),
    st.tuples(st.just("set_code_size"), _addr, _value),
    st.tuples(st.just("storage_set"), _addr, _slot, _value),
    st.tuples(st.just("storage_delete"), _addr, _slot),
    st.tuples(st.just("balance_of"), _addr),   # reads create accounts too
    st.tuples(st.just("storage_get"), _addr, _slot),
)


def _apply(state, op):
    """Apply one op; returns (result, exception type or None)."""
    name, *args = op
    try:
        if name == "snapshot":
            return state.snapshot(), None
        if name in ("commit", "revert"):
            depth = state.active_checkpoints
            # Map the float onto the *current* stack (same on both sides);
            # an empty stack targets id 0, which must raise on both.
            target = min(int(args[0] * depth), depth - 1) if depth else 0
            if name == "commit":
                return state.commit(target), None
            return state.revert_to(target), None
        return getattr(state, name)(*args), None
    except ValueError as exc:
        return None, type(exc)


def _world_view(state):
    """Every observable fact about the state, via the public API only."""
    view = {}
    for address in sorted(state.addresses()):
        record = state.account(address)
        view[address] = (
            record.balance,
            record.nonce,
            record.is_contract,
            record.code_size,
            tuple(sorted(record.storage.items(), key=lambda kv: repr(kv[0]))),
        )
    return view


@given(ops=st.lists(OPS, max_size=120))
@settings(max_examples=300, deadline=None)
def test_journal_equivalent_to_copy_on_snapshot(ops):
    journal = WorldState()
    reference = ReferenceWorldState()
    for op in ops:
        journal_result, journal_exc = _apply(journal, op)
        reference_result, reference_exc = _apply(reference, op)
        assert journal_exc == reference_exc, op
        assert journal_result == reference_result, op
        assert journal.active_checkpoints == reference.active_checkpoints, op
        assert _world_view(journal) == _world_view(reference), op


@given(seed=st.integers(0, 2**16), transactions=st.integers(4, 24),
       depth=st.integers(1, 6))
@settings(max_examples=15, deadline=None)
def test_state_stress_burst_is_state_equivalent(seed, transactions, depth):
    """The full EVM loop (deploys, deep chains, reverts) ends identically."""
    config = StateStressConfig(
        accounts=16, prefill_slots=1, bitmap_bits=512, call_depth=depth,
        transactions=transactions, revert_every=3, seed=seed,
    )
    results = {}
    for label, factory in (("journal", WorldState), ("reference", ReferenceWorldState)):
        engine, entry, clients = build_stress_engine(config, factory)
        stats = run_state_stress(engine, entry, clients, config)
        results[label] = (stats, state_fingerprint(engine.state))
    assert results["journal"][0] == results["reference"][0]
    assert results["journal"][1] == results["reference"][1]


# --- the Fig. 7 re-entrancy shape, differentially ---------------------------------


def _run_reentrancy_attack(state_factory):
    """Drive the Bank/Attacker exploit on a chain using ``state_factory``."""
    chain = Blockchain()
    chain.evm.state = state_factory()
    chain.trace_transactions = True
    owner = chain.create_account("owner", seed="reentrancy-owner")
    alice = chain.create_account("alice", seed="reentrancy-alice")
    eve = chain.create_account("eve", seed="reentrancy-eve")

    bank = owner.deploy(Bank).return_value
    alice.transact(bank, "addBalance", value=10 * ETHER)
    attacker = eve.deploy(Attacker, bank.this, True).return_value
    eve.transact(attacker, "deposit", 2 * ETHER, value=2 * ETHER)
    receipt = eve.transact(attacker, "withdraw")

    trace = receipt.trace
    return {
        "success": receipt.success,
        "gas_used": receipt.gas_used,
        "reentrant_frames": trace.reentrant_frames(),
        "reentrant_targets": sorted(trace.reentrant_targets()),
        "attacker_balance": chain.balance_of(attacker),
        "bank_balance": chain.balance_of(bank),
        "reentry_count": chain.read(attacker, "reentry_count"),
        "fingerprint": state_fingerprint(chain.state),
    }


def test_reentrancy_attack_identical_on_both_state_layers():
    journal = _run_reentrancy_attack(WorldState)
    reference = _run_reentrancy_attack(ReferenceWorldState)
    assert journal == reference
    # Sanity: the attack really produced the re-entrant call shape.
    assert journal["reentry_count"] == 1
    assert journal["reentrant_frames"], "expected a re-entrant frame pair"
    assert journal["attacker_balance"] == 4 * ETHER
