"""Unit tests for token requests (Fig. 2, Tab. I)."""

import pytest

from repro.core.token import TokenType
from repro.core.token_request import InvalidTokenRequest, TokenRequest
from repro.crypto.keys import KeyPair

CLIENT = KeyPair.from_seed("req-client").address
CONTRACT = KeyPair.from_seed("req-contract").address


def test_super_request_shape():
    request = TokenRequest.super_token(CONTRACT, CLIENT)
    assert request.token_type is TokenType.SUPER
    assert request.method is None
    assert not request.arguments
    assert not request.one_time


def test_method_request_shape():
    request = TokenRequest.method_token(CONTRACT, CLIENT, "withdraw", one_time=True)
    assert request.token_type is TokenType.METHOD
    assert request.method == "withdraw"
    assert request.one_time


def test_argument_request_shape():
    request = TokenRequest.argument_token(CONTRACT, CLIENT, "submit", {"amount": 9})
    assert request.token_type is TokenType.ARGUMENT
    assert request.arguments == {"amount": 9}


def test_table1_super_rejects_method_and_arguments():
    with pytest.raises(InvalidTokenRequest):
        TokenRequest(TokenType.SUPER, CONTRACT, CLIENT, method="m")
    with pytest.raises(InvalidTokenRequest):
        TokenRequest(TokenType.SUPER, CONTRACT, CLIENT, arguments={"a": 1})


def test_table1_method_requires_method_and_no_arguments():
    with pytest.raises(InvalidTokenRequest):
        TokenRequest(TokenType.METHOD, CONTRACT, CLIENT)
    with pytest.raises(InvalidTokenRequest):
        TokenRequest(TokenType.METHOD, CONTRACT, CLIENT, method="m", arguments={"a": 1})


def test_table1_argument_requires_method_and_arguments():
    with pytest.raises(InvalidTokenRequest):
        TokenRequest(TokenType.ARGUMENT, CONTRACT, CLIENT, method="m")
    with pytest.raises(InvalidTokenRequest):
        TokenRequest(TokenType.ARGUMENT, CONTRACT, CLIENT, arguments={"a": 1})


def test_addresses_must_be_20_bytes():
    with pytest.raises(InvalidTokenRequest):
        TokenRequest.super_token(b"\x01" * 19, CLIENT)
    with pytest.raises(InvalidTokenRequest):
        TokenRequest.super_token(CONTRACT, b"\x01" * 21)


def test_encode_layout_starts_with_type_and_addresses():
    request = TokenRequest.method_token(CONTRACT, CLIENT, "withdraw")
    payload = request.encode()
    assert payload[0] == int(TokenType.METHOD)
    assert payload[1:21] == CONTRACT
    assert payload[21:41] == CLIENT
    assert b"withdraw" in payload


def test_encode_grows_with_arguments():
    small = TokenRequest.argument_token(CONTRACT, CLIENT, "m", {"a": 1}).encode()
    large = TokenRequest.argument_token(CONTRACT, CLIENT, "m", {"a": 1, "b": "x" * 50}).encode()
    assert len(large) > len(small)


def test_encode_one_time_flag_changes_payload():
    plain = TokenRequest.method_token(CONTRACT, CLIENT, "m").encode()
    one_time = TokenRequest.method_token(CONTRACT, CLIENT, "m", one_time=True).encode()
    assert plain != one_time


def test_describe_is_informative():
    request = TokenRequest.argument_token(CONTRACT, CLIENT, "submit", {"amount": 5},
                                          one_time=True)
    text = request.describe()
    assert "argument token" in text
    assert "submit" in text
    assert "one-time" in text
