"""Unit tests for the journaled WorldState and the EVM dispatch fast path.

The journal must be observationally identical to the copy-on-snapshot
:class:`ReferenceWorldState` it replaced (the hypothesis suite in
``test_property_state_journal.py`` drives random interleavings; here the
deterministic shapes the EVM actually produces are pinned down), plus the
satellite guarantees: read-only ``storage_of`` views, cheap
``AccountState.copy`` for immutable values, per-class dispatch tables that
never leak across classes, and ``__slots__`` on the per-call records.
"""

import pytest

from repro.chain import Blockchain
from repro.chain.contract import Contract, external, internal
from repro.chain.evm import (
    CallRecord,
    ExecutionEngine,
    MessageContext,
    StorageAccess,
    _dispatch_table,
)
from repro.chain.state import AccountState, ReferenceWorldState, WorldState
from repro.crypto.keys import KeyPair

ADDR_A = KeyPair.from_seed("journal-a").address
ADDR_B = KeyPair.from_seed("journal-b").address

BOTH = pytest.mark.parametrize("state_cls", [WorldState, ReferenceWorldState])


# --- snapshot semantics, identical on both implementations -----------------------


@BOTH
def test_revert_undoes_committed_inner_frame(state_cls):
    """A commit merges into the parent; reverting the parent still undoes it."""
    state = state_cls()
    state.add_balance(ADDR_A, 100)
    outer = state.snapshot()
    state.storage_set(ADDR_A, "k", 1)
    inner = state.snapshot()
    state.storage_set(ADDR_A, "k", 2)
    state.add_balance(ADDR_A, 50)
    state.commit(inner)
    assert state.storage_get(ADDR_A, "k") == 2
    state.revert_to(outer)
    assert state.storage_get(ADDR_A, "k", None) is None
    assert state.balance_of(ADDR_A) == 100


@BOTH
def test_nested_revert_inside_committed_frame(state_cls):
    """Inner revert, further writes, commit, then outer revert (EVM shape)."""
    state = state_cls()
    state.storage_set(ADDR_A, "slot", "genesis")
    outer = state.snapshot()
    frame = state.snapshot()
    state.storage_set(ADDR_A, "slot", "frame")
    inner = state.snapshot()
    state.storage_set(ADDR_A, "slot", "inner")
    state.storage_set(ADDR_B, "new", 1)
    state.revert_to(inner)          # failed sub-call rolls back
    assert state.storage_get(ADDR_A, "slot") == "frame"
    assert not state.has_account(ADDR_B)
    state.storage_set(ADDR_A, "after", True)
    state.commit(frame)             # frame succeeds
    state.revert_to(outer)          # ...but the transaction reverts
    assert state.storage_get(ADDR_A, "slot") == "genesis"
    assert not state.storage_contains(ADDR_A, "after")


@BOTH
def test_revert_removes_accounts_created_by_reads(state_cls):
    """Even a pure balance read materialises an account; revert removes it."""
    state = state_cls()
    snap = state.snapshot()
    assert state.balance_of(ADDR_A) == 0
    assert state.has_account(ADDR_A)
    state.revert_to(snap)
    assert not state.has_account(ADDR_A)


@BOTH
def test_storage_delete_and_revert(state_cls):
    state = state_cls()
    state.storage_set(ADDR_A, "k", 7)
    snap = state.snapshot()
    state.storage_delete(ADDR_A, "k")
    assert not state.storage_contains(ADDR_A, "k")
    state.revert_to(snap)
    assert state.storage_get(ADDR_A, "k") == 7


@BOTH
def test_contract_metadata_reverts(state_cls):
    state = state_cls()
    snap = state.snapshot()
    state.set_is_contract(ADDR_A)
    state.set_code_size(ADDR_A, 640)
    assert state.account(ADDR_A).is_contract
    state.revert_to(snap)
    assert not state.has_account(ADDR_A)


@BOTH
def test_snapshot_ids_are_stack_positions(state_cls):
    state = state_cls()
    assert state.snapshot() == 0
    assert state.snapshot() == 1
    state.commit(0)
    assert state.snapshot() == 0  # positions are reused exactly as before
    state.revert_to(0)
    with pytest.raises(ValueError):
        state.revert_to(0)
    with pytest.raises(ValueError):
        state.commit(0)


@BOTH
def test_multi_level_commit_then_outer_revert(state_cls):
    state = state_cls()
    state.add_balance(ADDR_A, 1)
    outer = state.snapshot()
    state.increment_nonce(ADDR_A)
    state.snapshot()
    state.add_balance(ADDR_A, 10)
    state.snapshot()
    state.add_balance(ADDR_A, 100)
    state.commit(1)  # commits *both* inner frames in one call
    assert state.balance_of(ADDR_A) == 111
    state.revert_to(outer)
    assert state.balance_of(ADDR_A) == 1
    assert state.nonce_of(ADDR_A) == 0


# --- journal internals -----------------------------------------------------------


def test_snapshot_is_o1_and_records_grow_with_writes():
    state = WorldState()
    for i in range(50):
        state.add_balance(ADDR_A, 1)  # no checkpoint: nothing journaled
    assert state.journal_records() == 0
    state.snapshot()
    assert state.journal_records() == 0  # O(1): an empty checkpoint
    state.add_balance(ADDR_A, 1)
    state.add_balance(ADDR_A, 1)      # second touch: no new record
    state.storage_set(ADDR_A, "k", 1)
    assert state.journal_records() == 2  # balance + slot (first touch only)


def test_commit_merges_records_into_parent():
    state = WorldState()
    state.add_balance(ADDR_A, 5)
    state.snapshot()
    state.add_balance(ADDR_A, 1)
    child = state.snapshot()
    state.add_balance(ADDR_A, 1)          # key already known to the parent
    state.storage_set(ADDR_B, "s", 1)     # key new to the parent
    state.commit(child)
    assert state.active_checkpoints == 1
    # parent keeps its older balance record, adopts the child's new keys
    state.revert_to(0)
    assert state.balance_of(ADDR_A) == 5
    assert not state.has_account(ADDR_B)


# --- storage_of is read-only ------------------------------------------------------


@BOTH
def test_storage_of_view_is_read_only(state_cls):
    state = state_cls()
    state.storage_set(ADDR_A, "k", 1)
    view = state.storage_of(ADDR_A)
    assert view["k"] == 1
    with pytest.raises(TypeError):
        view["k"] = 2
    with pytest.raises((TypeError, AttributeError)):
        view.pop("k")
    # ...but it is a live view of the underlying storage.
    state.storage_set(ADDR_A, "k2", 2)
    assert view["k2"] == 2


# --- AccountState.copy / deep_copy -------------------------------------------------


def test_account_copy_shares_immutable_values():
    record = AccountState(storage={
        "int": 42,
        "bytes": b"\x01" * 32,
        "tuple": (1, b"x", "y"),
        "list": [1, 2],
    })
    clone = record.copy()
    assert clone.storage["int"] is record.storage["int"]
    assert clone.storage["bytes"] is record.storage["bytes"]
    assert clone.storage["tuple"] is record.storage["tuple"]
    # Mutable values still get genuinely copied.
    assert clone.storage["list"] is not record.storage["list"]
    clone.storage["list"].append(3)
    assert record.storage["list"] == [1, 2]


@BOTH
def test_deep_copy_still_fully_independent(state_cls):
    state = state_cls()
    state.add_balance(ADDR_A, 7)
    state.storage_set(ADDR_A, "x", [1, 2])
    clone = state.deep_copy()
    assert type(clone) is state_cls
    clone.add_balance(ADDR_A, 1)
    clone.storage_get(ADDR_A, "x").append(3)
    assert state.balance_of(ADDR_A) == 7
    assert state.storage_get(ADDR_A, "x") == [1, 2]


# --- __slots__ on the per-call records ---------------------------------------------


@pytest.mark.parametrize("instance", [
    AccountState(),
    MessageContext(sender=b"\x00" * 20, value=0, data=b"", sig=b"\x00" * 4),
    StorageAccess(depth=0, frame=0, address=b"\x00" * 20, slot="s", is_write=False),
    CallRecord(index=0, depth=0, sender=b"\x00" * 20, target=b"\x01" * 20,
               method="m", args=(), value=0),
])
def test_per_call_records_have_slots(instance):
    assert not hasattr(instance, "__dict__")
    with pytest.raises(AttributeError):
        instance.not_a_field = 1


# --- per-class dispatch tables ------------------------------------------------------


class _Pinger(Contract):
    @external
    def ping(self) -> str:
        return "ping"

    @internal
    def _helper(self) -> None:  # pragma: no cover - never dispatched
        pass


class _Quieter(Contract):
    @external
    def hush(self) -> str:
        return "hush"


class _LoudPinger(_Pinger):
    @external
    def shout(self) -> str:
        return "PING"


def test_dispatch_cache_is_not_polluted_across_classes():
    chain = Blockchain()
    alice = chain.create_account("alice")
    pinger = alice.deploy(_Pinger).return_value
    assert alice.transact(pinger, "ping").return_value == "ping"

    # A class registered *after* another's table was built sees only its own
    # methods -- and vice versa.
    quieter = alice.deploy(_Quieter).return_value
    receipt = alice.transact(quieter, "ping")
    assert not receipt.success
    assert "UnknownMethod" in receipt.error
    assert alice.transact(quieter, "hush").return_value == "hush"
    assert alice.transact(pinger, "hush").success is False

    assert "ping" not in _dispatch_table(_Quieter)
    assert "hush" not in _dispatch_table(_Pinger)


def test_dispatch_cache_subclass_gets_its_own_table():
    assert set(_dispatch_table(_Pinger)) == {"ping", "_helper"}
    # The subclass table includes inherited + own methods...
    assert {"ping", "shout"} <= set(_dispatch_table(_LoudPinger))
    # ...without the base class table growing the subclass's additions.
    assert "shout" not in _dispatch_table(_Pinger)


def test_dispatchable_method_count_excludes_internals():
    engine = ExecutionEngine()
    assert engine._dispatchable_methods(_Pinger()) == ["ping"]


# --- the journaled-by-reference guard (SMACS_STATE_GUARD) -------------------------


def test_journal_guard_off_documents_the_aliasing_hazard():
    """With the guard off, in-place mutation of a stored mutable value leaks
    through a revert -- the documented hazard the guard exists to catch."""
    from repro.chain.state import journal_guard

    assert journal_guard() == "off"  # the default: zero overhead
    state = WorldState()
    state.storage_set(ADDR_A, "box", [1, 2])
    snap = state.snapshot()
    state.storage_get(ADDR_A, "box").append(3)  # behind the journal's back
    state.revert_to(snap)
    assert state.storage_get(ADDR_A, "box") == [1, 2, 3]  # the leak, verbatim


def test_journal_guard_copy_mode_restores_the_pristine_value():
    from repro.chain.state import set_journal_guard

    previous = set_journal_guard("copy")
    try:
        state = WorldState()
        state.storage_set(ADDR_A, "box", [1, 2])
        snap = state.snapshot()
        state.storage_set(ADDR_A, "box", [9])  # journal snapshots a deep copy
        state.storage_get(ADDR_A, "box").append(10)
        state.revert_to(snap)
        assert state.storage_get(ADDR_A, "box") == [1, 2]
    finally:
        set_journal_guard(previous)


def test_journal_guard_canary_raises_on_behind_the_back_mutation():
    from repro.chain.state import JournalHazardError, set_journal_guard

    previous = set_journal_guard("canary")
    try:
        state = WorldState()
        state.storage_set(ADDR_A, "box", [1, 2])
        snap = state.snapshot()
        box = state.storage_get(ADDR_A, "box")  # alias captured before overwrite
        state.storage_set(ADDR_A, "box", [1, 2, 3])  # fingerprints the old value
        box.append(99)  # mutates the journaled undo value behind the journal's back
        with pytest.raises(JournalHazardError):
            state.revert_to(snap)
    finally:
        set_journal_guard(previous)


def test_journal_guard_canary_is_quiet_for_honest_writes():
    from repro.chain.state import set_journal_guard

    previous = set_journal_guard("canary")
    try:
        state = WorldState()
        state.storage_set(ADDR_A, "k", (1, 2))
        snap = state.snapshot()
        state.storage_set(ADDR_A, "k", (3, 4))
        state.revert_to(snap)
        assert state.storage_get(ADDR_A, "k") == (1, 2)
        snap2 = state.snapshot()
        state.storage_set(ADDR_A, "k", (5, 6))
        state.commit(snap2)
        assert state.storage_get(ADDR_A, "k") == (5, 6)
    finally:
        set_journal_guard(previous)


def test_set_journal_guard_rejects_unknown_modes():
    from repro.chain.state import set_journal_guard

    with pytest.raises(ValueError):
        set_journal_guard("paranoid")


# --- touched_since (the durability layer's block-delta source) --------------------


def test_touched_since_aggregates_slots_and_scalars():
    state = WorldState()
    state.storage_set(ADDR_A, "pre", 1)
    snap = state.snapshot()
    state.storage_set(ADDR_A, "x", 1)
    inner = state.snapshot()
    state.storage_set(ADDR_A, "y", 2)
    state.add_balance(ADDR_B, 5)
    state.commit(inner)
    touched = state.touched_since(snap)
    assert touched[ADDR_A] == {"x", "y"}
    assert touched[ADDR_B] == set()  # scalar-only touch
    assert "pre" not in touched[ADDR_A]
    state.commit(snap)


def test_touched_since_rejects_foreign_snapshot_ids():
    state = WorldState()
    with pytest.raises(ValueError):
        state.touched_since(42)


def test_worldstate_discard_account_requires_closed_journal():
    state = WorldState()
    state.add_balance(ADDR_A, 1)
    snap = state.snapshot()
    with pytest.raises(RuntimeError):
        state.discard_account(ADDR_A)
    state.commit(snap)
    state.discard_account(ADDR_A)
    assert not state.has_account(ADDR_A)
