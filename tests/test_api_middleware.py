"""Composable middleware: each layer alone and the factory-built stacks."""

from __future__ import annotations

import pytest

from repro.api import (
    Audit,
    ErrorCode,
    Metrics,
    RateLimiter,
    RetryFailover,
    SignatureCachePrimer,
    build_service,
    unwrap,
)
from repro.core.acr import RuleSet, WhitelistRule
from repro.core.token_request import TokenRequest
from repro.core.token_service import TokenService
from repro.crypto.sigcache import SignatureCache
from repro.crypto.keys import KeyPair


@pytest.fixture
def service(chain, ts_keypair):
    return TokenService(keypair=ts_keypair, rules=RuleSet(), clock=chain.clock)


def _request(recorder, account, one_time=False):
    return TokenRequest.method_token(
        recorder.this, account.address, "submit", one_time=one_time
    )


# --- RateLimiter --------------------------------------------------------------------


def test_rate_limiter_carries_rate_limited_results(chain, service, recorder, alice):
    limited = RateLimiter(service, rate_per_second=2, burst=3, clock=chain.clock)
    results = limited.submit([_request(recorder, alice)] * 5)
    assert [result.issued for result in results] == [True, True, True, False, False]
    for result in results[3:]:
        assert result.code is ErrorCode.RATE_LIMITED
        assert result.error.retryable
    assert limited.layer_stats() == {"admitted": 3, "limited": 2}


def test_rate_limiter_refills_with_the_shared_clock(chain, service, recorder, alice):
    limited = RateLimiter(service, rate_per_second=1, burst=2, clock=chain.clock)
    assert [r.issued for r in limited.submit([_request(recorder, alice)] * 2)] == [True, True]
    assert not limited.submit(_request(recorder, alice))[0].issued
    chain.clock.advance(2)
    assert limited.submit(_request(recorder, alice))[0].issued


def test_rate_limiter_without_clock_refills_on_injected_time(service, recorder, alice):
    # No SimulatedClock: the wall-clock fallback, made deterministic by
    # injecting ``now`` instead of sleeping through a real refill window.
    fake = {"t": 100.0}
    limited = RateLimiter(service, rate_per_second=20, burst=3, now=lambda: fake["t"])
    assert all(r.issued for r in limited.submit([_request(recorder, alice)] * 3))
    assert limited.submit(_request(recorder, alice))[0].code is ErrorCode.RATE_LIMITED
    fake["t"] += 0.2  # ~4 bucket tokens at 20/s
    assert limited.submit(_request(recorder, alice))[0].issued


def test_rate_limiter_partial_grant_preserves_order_and_suffix(chain, service, recorder):
    """``0 < allowed < len(batch)``: the granted prefix is issued in request
    order and the RATE_LIMITED failures are *exactly* the suffix."""
    clients = [chain.create_account(seed=f"pg-{i}") for i in range(5)]
    batch = [_request(recorder, client) for client in clients]
    limited = RateLimiter(service, rate_per_second=1, burst=3, clock=chain.clock)

    results = limited.submit(batch)
    assert len(results) == len(batch)
    # Positional identity: result i answers request i, issued or not.
    assert [result.request for result in results] == batch
    assert [result.issued for result in results] == [True, True, True, False, False]
    for result in results[:3]:
        assert result.token is not None and result.error is None
    for result in results[3:]:
        assert result.token is None
        assert result.code is ErrorCode.RATE_LIMITED
        assert result.error.retryable
    assert limited.layer_stats() == {"admitted": 3, "limited": 2}

    # A partial refill produces another partial grant, same shape.
    chain.clock.advance(2)  # 2 bucket tokens at 1/s
    again = limited.submit(batch[:4])
    assert [result.request for result in again] == batch[:4]
    assert [result.issued for result in again] == [True, True, False, False]
    assert all(result.code is ErrorCode.RATE_LIMITED for result in again[2:])
    assert limited.layer_stats() == {"admitted": 5, "limited": 4}


def test_rate_limiter_validates_parameters(service):
    with pytest.raises(ValueError):
        RateLimiter(service, rate_per_second=0, burst=1)
    with pytest.raises(ValueError):
        RateLimiter(service, rate_per_second=1, burst=0)


# --- TokenBucket (shared by RateLimiter and the wire edge) --------------------------


def test_token_bucket_grants_partially_and_refills():
    from repro.api import TokenBucket

    fake = {"t": 0.0}
    bucket = TokenBucket(rate_per_second=10, burst=5, now=lambda: fake["t"])
    assert bucket.take(3) == 3
    assert bucket.take(4) == 2  # partial grant: only 2 left in the bucket
    assert bucket.take(1) == 0
    fake["t"] += 0.25  # 2.5 bucket tokens accrue
    assert bucket.take(5) == 2
    fake["t"] += 10.0  # refill saturates at the burst capacity
    assert bucket.take(50) == 5


def test_token_bucket_validates_parameters():
    from repro.api import TokenBucket

    with pytest.raises(ValueError):
        TokenBucket(rate_per_second=0, burst=1)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_second=1, burst=0)


# --- Metrics ------------------------------------------------------------------------


def test_metrics_counts_outcomes_by_code(chain, service, recorder, alice, eve):
    service.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    metered = Metrics(service)
    metered.submit([_request(recorder, alice), _request(recorder, eve)])
    metered.submit(_request(recorder, eve))
    stats = metered.layer_stats()
    assert stats["submissions"] == 2
    assert stats["requests"] == 3
    assert stats["issued"] == 1
    assert stats["failed"] == 2
    assert stats["errors_by_code"] == {"DENIED": 2}
    assert stats["largest_batch"] == 2
    # The layer folds into the stack-wide stats dict under its key.
    assert metered.stats()["metrics"]["requests"] == 3


# --- Audit --------------------------------------------------------------------------


def test_audit_records_described_outcomes(chain, service, recorder, alice, eve):
    service.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    seen = []
    audited = Audit(service, sink=lambda desc, outcome: seen.append(outcome))
    audited.submit([_request(recorder, alice), _request(recorder, eve)])
    assert [outcome for _, outcome in audited.entries] == ["issued", "DENIED"]
    assert seen == ["issued", "DENIED"]
    assert audited.layer_stats() == {"entries": 2}


def test_audit_trims_to_max_entries(chain, service, recorder, alice):
    audited = Audit(service, max_entries=3)
    for _ in range(5):
        audited.submit(_request(recorder, alice))
    assert len(audited.entries) == 3


# --- RetryFailover ------------------------------------------------------------------


class _FlakyIssuer:
    """Protocol double whose first ``fail_times`` submissions time out."""

    def __init__(self, inner, fail_times):
        self.inner = inner
        self.remaining = fail_times

    @property
    def address(self):
        return self.inner.address

    def submit(self, requests):
        from repro.consensus.counter import CounterTimeout

        if self.remaining > 0:
            self.remaining -= 1
            raise CounterTimeout("injected transient failure")
        return self.inner.submit(requests)

    def stats(self):
        return self.inner.stats()

    def update_rules(self, mutate):
        self.inner.update_rules(mutate)


def test_retry_failover_recovers_transient_failures(chain, service, recorder, alice):
    stack = RetryFailover(_FlakyIssuer(service, fail_times=2), attempts=3)
    results = stack.submit([_request(recorder, alice, one_time=True)] * 2)
    assert all(result.issued for result in results)
    assert stack.failovers == 2
    assert stack.recovered == 2


def test_retry_failover_exhaustion_carries_the_error(chain, service, recorder, alice):
    stack = RetryFailover(_FlakyIssuer(service, fail_times=99), attempts=2)
    results = stack.submit([_request(recorder, alice)])
    assert results[0].code is ErrorCode.COUNTER_TIMEOUT
    assert not results[0].issued


def test_retry_failover_does_not_retry_denials(chain, service, recorder, alice, eve):
    service.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    stack = RetryFailover(service, attempts=3)
    results = stack.submit([_request(recorder, eve)])
    assert results[0].code is ErrorCode.DENIED
    assert stack.failovers == 0


# --- SignatureCachePrimer -----------------------------------------------------------


def test_primer_warms_recovery_for_issued_tokens(chain, ts_keypair, recorder, alice):
    cache = SignatureCache()
    service = TokenService(keypair=ts_keypair, rules=RuleSet(), clock=chain.clock)
    primed = SignatureCachePrimer(service, cache)
    result = primed.submit(_request(recorder, alice, one_time=True))[0]
    assert result.issued
    token = result.token
    digest = token.digest_for(alice.address, recorder.this, method="submit")
    assert cache.peek_recovery(digest, token.signature) == service.address
    assert primed.layer_stats()["primed"] == 1


def test_primer_skips_failures_and_duplicates(chain, ts_keypair, recorder, alice, eve):
    cache = SignatureCache()
    service = TokenService(keypair=ts_keypair, rules=RuleSet(), clock=chain.clock)
    service.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    primed = SignatureCachePrimer(service, cache)
    primed.submit([_request(recorder, alice), _request(recorder, eve)])
    primed.submit(_request(recorder, alice))  # deterministic replay, same token
    assert primed.layer_stats()["primed"] == 1


# --- stacking / factory -------------------------------------------------------------


def test_unwrap_reaches_the_base_service(chain, ts_keypair):
    stack = build_service(
        "serial", keypair=ts_keypair, clock=chain.clock,
        rate_limit=(100, 100), audit=True, metrics=True,
    )
    base = unwrap(stack)
    assert isinstance(base, TokenService)
    assert stack.address == base.address


def test_stacked_stats_fold_every_layer(chain, ts_keypair, recorder, alice):
    stack = build_service(
        "serial", keypair=ts_keypair, clock=chain.clock,
        rate_limit=(100, 100), audit=True, metrics=True,
    )
    stack.submit(_request(recorder, alice))
    stats = stack.stats()
    assert stats["profile"] == "serial"
    for layer in ("rate_limiter", "audit", "metrics"):
        assert layer in stats, layer


def test_factory_validates_inputs(chain):
    with pytest.raises(ValueError):
        build_service("interplanetary")
    with pytest.raises(ValueError):
        build_service("serial", cache_priming="sideways")


def test_factory_middleware_cache_priming(chain, recorder, alice):
    cache = SignatureCache()
    stack = build_service(
        "sharded",
        keypair=KeyPair.from_seed("primer-ts"),
        clock=chain.clock,
        signature_cache=cache,
        cache_priming="middleware",
    )
    base = unwrap(stack)
    # The base shards were built without the internal cache wiring...
    assert base.signature_cache is not cache
    result = stack.submit(_request(recorder, alice, one_time=True))[0]
    token = result.token
    digest = token.digest_for(alice.address, recorder.this, method="submit")
    # ...yet issuance still primed the supplied cache, through the layer.
    assert cache.peek_recovery(digest, token.signature) == stack.address
