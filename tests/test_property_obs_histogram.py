"""Property-based tests (hypothesis) for the repro.obs histogram.

Two guarantees the profiling layer leans on:

1. **Bounded quantile error.**  For arbitrary sample sets, every quantile
   estimate is within one bucket boundary of the exact nearest-rank
   percentile: the estimate never under-reports, and over-reports by at
   most one bucket's growth factor (``10**(1/buckets_per_decade)``), with
   the underflow/overflow buckets pinned to the range floor / observed max.
2. **Merge equals single-stream.**  Recording two streams into separate
   histograms and merging gives byte-identical buckets (and therefore
   identical quantiles) to recording both streams into one histogram.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Histogram, merge_histogram_snapshots
from repro.pipeline.openloop import percentile

pytestmark = pytest.mark.slow  # hypothesis-heavy: the CI slow lane

# Positive durations across the histogram's whole dynamic range, plus the
# out-of-range edges (sub-microsecond underflow, kilo-second overflow).
samples = st.lists(
    st.floats(min_value=1e-8, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)
quantiles = st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0])


@given(values=samples, q=quantiles)
@settings(max_examples=200, deadline=None)
def test_quantile_estimate_is_within_one_bucket_of_exact(values, q):
    hist = Histogram("prop")
    for value in values:
        hist.observe(value)
    exact = percentile(values, q)
    assert exact is not None
    estimate = hist.quantile(q)
    assert estimate is not None

    growth = 10.0 ** (1.0 / hist.buckets_per_decade)
    top = hist.lower * 10.0 ** hist.decades
    if exact < hist.lower:
        # Underflow bucket: the estimate is pinned to the range floor (or
        # the observed max when every sample underflowed).
        assert estimate <= hist.lower * (1 + 1e-9)
    elif exact >= top:
        # Overflow bucket: the estimate is the observed max, which the
        # exact nearest-rank value can never exceed.
        assert exact <= estimate * (1 + 1e-9)
        assert estimate <= max(values) * (1 + 1e-9)
    else:
        # In-range: never under-reports, over-reports by at most one
        # bucket's growth factor (fp slack for samples exactly on an edge).
        assert estimate >= exact * (1 - 1e-9)
        assert estimate <= exact * growth * (1 + 1e-9)


@given(left=samples, right=samples)
@settings(max_examples=200, deadline=None)
def test_merge_equals_single_stream_recording(left, right):
    separate_left, separate_right, single = (
        Histogram(name) for name in ("left", "right", "single")
    )
    for value in left:
        separate_left.observe(value)
        single.observe(value)
    for value in right:
        separate_right.observe(value)
        single.observe(value)

    separate_left.merge(separate_right)
    merged, direct = separate_left.snapshot(), single.snapshot()
    assert merged["buckets"] == direct["buckets"]
    assert merged["underflow"] == direct["underflow"]
    assert merged["overflow"] == direct["overflow"]
    assert merged["count"] == direct["count"]
    assert merged["min"] == direct["min"]
    assert merged["max"] == direct["max"]
    assert math.isclose(merged["sum"], direct["sum"], rel_tol=1e-9, abs_tol=1e-12)
    for key in ("p50", "p99", "p999"):
        assert merged[key] == direct[key]


@given(left=samples, right=samples)
@settings(max_examples=100, deadline=None)
def test_snapshot_merge_equals_instance_merge(left, right):
    a, b, c, d = (Histogram(name) for name in "abcd")
    for value in left:
        a.observe(value)
        c.observe(value)
    for value in right:
        b.observe(value)
        d.observe(value)
    via_snapshots = merge_histogram_snapshots(a.snapshot(), b.snapshot())
    c.merge(d)
    via_instances = c.snapshot()
    assert via_snapshots["buckets"] == via_instances["buckets"]
    assert via_snapshots["p999"] == via_instances["p999"]
    assert via_snapshots["count"] == via_instances["count"]
