"""Deterministic-seed regression tests for the §VI-A synthetic traces.

The one-time bitmap is sized off these traces (``token_lifetime x
max_tx_per_second``, Tab. IV), so the generator must be bit-for-bit
reproducible under a fixed seed and its across-contract average peak must
stay at the paper's ≈35 tx/s calibration point.
"""

import hashlib

from repro.workloads.traces import (
    average_peak_rate,
    observed_average_peak,
    peak_window,
    synthetic_popular_contract_traces,
    trace_named,
)

PAPER_AVERAGE_PEAK = 35.0  # tx/s, §VI-A
TOLERANCE = 0.10           # ±10%


def _fingerprint(traces) -> str:
    hasher = hashlib.sha256()
    for trace in traces:
        hasher.update(trace.name.encode())
        hasher.update(b"".join(n.to_bytes(4, "big") for n in trace.arrivals))
    return hasher.hexdigest()


def test_fixed_seed_reproduces_identical_traces():
    first = synthetic_popular_contract_traces(duration_seconds=900, seed=2019)
    second = synthetic_popular_contract_traces(duration_seconds=900, seed=2019)
    assert _fingerprint(first) == _fingerprint(second)
    for a, b in zip(first, second):
        assert a.name == b.name
        assert a.arrivals == b.arrivals


def test_different_seed_changes_the_traces():
    a = synthetic_popular_contract_traces(duration_seconds=300, seed=2019)
    b = synthetic_popular_contract_traces(duration_seconds=300, seed=2020)
    assert _fingerprint(a) != _fingerprint(b)


def test_golden_fingerprint_for_default_seed():
    """Pin the exact default-seed trace bytes: any change to the generator
    (sampler, calibration constants, iteration order) must show up here as a
    deliberate golden-value update."""
    traces = synthetic_popular_contract_traces(duration_seconds=600, seed=2019)
    assert _fingerprint(traces) == (
        "041e05e3016137cbc4653cffb1ef3af0c01581640fadb7f9c214e00ab35d7013"
    )


def test_configured_average_peak_matches_paper():
    traces = synthetic_popular_contract_traces(duration_seconds=60, seed=2019)
    assert abs(average_peak_rate(traces) - PAPER_AVERAGE_PEAK) / PAPER_AVERAGE_PEAK < 0.01


def test_observed_average_peak_within_ten_percent_of_paper():
    """A full diurnal hour of traffic: the *observed* per-contract peaks must
    average to ≈35 tx/s (±10%), reproducing the §VI-A sizing input."""
    traces = synthetic_popular_contract_traces(duration_seconds=3_600, seed=2019)
    observed = observed_average_peak(traces)
    assert abs(observed - PAPER_AVERAGE_PEAK) / PAPER_AVERAGE_PEAK < TOLERANCE


def test_cryptokitties_trace_carries_the_highest_peak():
    traces = synthetic_popular_contract_traces(duration_seconds=3_600, seed=2019)
    kitties = trace_named("CryptoKitties", traces)
    assert kitties.peak_tx_per_second == max(t.peak_tx_per_second for t in traces)
    assert kitties.observed_peak >= 40  # §VI-A: ≈48 tx/s, the single highest


def test_peak_window_finds_the_densest_stretch():
    traces = synthetic_popular_contract_traces(duration_seconds=600, seed=2019)
    kitties = trace_named("CryptoKitties", traces)
    start, window = peak_window(kitties, 30)
    assert len(window) == 30
    assert kitties.arrivals[start:start + 30] == window
    # No other 30s window carries more transactions.
    best = sum(window)
    for i in range(len(kitties.arrivals) - 30 + 1):
        assert sum(kitties.arrivals[i:i + 30]) <= best


def test_trace_named_unknown_raises():
    import pytest

    with pytest.raises(KeyError):
        trace_named("NotAContract", duration_seconds=10, seed=1)
