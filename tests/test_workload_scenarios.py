"""The named scenario mixes of the workload generator."""

from repro.core.token import TokenType
from repro.crypto.keys import KeyPair
from repro.workloads import (
    ScenarioMix,
    flash_sale_bursts,
    multi_contract_fanout,
    replay_storm,
    submit_mix,
)

CONTRACTS = [KeyPair.from_seed(f"scenario-contract-{i}").address for i in range(3)]
CLIENTS = [KeyPair.from_seed(f"scenario-client-{i}").address for i in range(8)]


def test_scenarios_are_deterministic_in_their_seed():
    for build in (
        lambda seed: flash_sale_bursts(CONTRACTS[0], CLIENTS, seed=seed),
        lambda seed: replay_storm(CONTRACTS[0], CLIENTS, seed=seed),
        lambda seed: multi_contract_fanout(CONTRACTS, CLIENTS, seed=seed),
    ):
        same_a, same_b, different = build(1), build(1), build(2)
        assert same_a.flattened() == same_b.flattened()
        assert different.flattened() != same_a.flattened()


def test_flash_sale_shape():
    mix = flash_sale_bursts(
        CONTRACTS[0], CLIENTS, bursts=5, burst_size=20,
        price_points=(10, 20), seed=3,
    )
    assert mix.name == "flash-sale"
    assert len(mix.batches) == 5
    assert mix.total_requests == 100
    for request in mix.flattened():
        assert request.token_type is TokenType.ARGUMENT
        assert request.one_time
        assert request.contract == CONTRACTS[0]
        assert request.arguments["amount"] in (10, 20)
        assert request.client in CLIENTS


def test_flash_sale_client_popularity_is_skewed():
    mix = flash_sale_bursts(CONTRACTS[0], CLIENTS, bursts=8, burst_size=64, seed=4)
    per_client = {}
    for request in mix.flattened():
        per_client[request.client] = per_client.get(request.client, 0) + 1
    counts = sorted(per_client.values(), reverse=True)
    assert counts[0] > mix.total_requests // len(CLIENTS)  # a dominant bot


def test_replay_storm_replays_a_small_distinct_set():
    mix = replay_storm(
        CONTRACTS[0], CLIENTS, unique_requests=6, replays_per_request=10,
        batch_size=16, seed=5,
    )
    requests = mix.flattened()
    assert len(requests) == 60
    assert len({request.encode() for request in requests}) <= 6
    assert all(not request.one_time for request in requests)
    assert all(len(batch) <= 16 for batch in mix.batches)


def test_multi_contract_fanout_covers_every_contract():
    mix = multi_contract_fanout(
        CONTRACTS, CLIENTS, requests_per_contract=10, batch_size=8, seed=6
    )
    assert mix.total_requests == 30
    touched = {request.contract for request in mix.flattened()}
    assert touched == set(CONTRACTS)


def test_scenario_mix_accounting():
    mix = ScenarioMix(name="x", batches=[[], [], []])
    assert mix.total_requests == 0
    assert mix.flattened() == []


def test_submit_mix_drives_any_issuer_stack():
    """Scenario mixes flow through the TokenIssuer protocol batch-by-batch."""
    from repro.api import build_service

    mix = replay_storm(
        CONTRACTS[0], CLIENTS, unique_requests=4, replays_per_request=4,
        batch_size=8, seed=9,
    )
    for profile in ("serial", "sharded"):
        issuer = build_service(profile, keypair=KeyPair.from_seed("scenario-ts"))
        results = submit_mix(issuer, mix)
        assert len(results) == mix.total_requests
        assert all(result.issued for result in results)
        assert [r.request for r in results] == mix.flattened()


def test_state_stress_scenario_is_deterministic_and_exercises_reverts():
    """The state-stress burst: Fig. 8 depth, Tab. IV window, revert mix."""
    from repro.workloads import (
        StateStressConfig,
        build_stress_engine,
        run_state_stress,
        state_fingerprint,
    )

    config = StateStressConfig(
        accounts=24, prefill_slots=2, bitmap_bits=1024, call_depth=4,
        transactions=9, revert_every=3,
    )
    runs = []
    for _ in range(2):
        engine, entry, clients = build_stress_engine(config)
        stats = run_state_stress(engine, entry, clients, config)
        runs.append((stats, state_fingerprint(engine.state)))
        # Tab. IV window words + bookkeeping live on the entry contract.
        assert engine.state.storage_slot_count(entry) > config.bitmap_words
        # Depth-4 chain means each success touched all four relays.
        assert stats["executed"] == 9
        assert stats["reverted"] == 3
        assert stats["succeeded"] == 6
    assert runs[0] == runs[1]
