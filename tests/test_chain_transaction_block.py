"""Unit tests for transactions, blocks and the simulated clock."""

import pytest

from repro.chain.block import Block, GENESIS_PARENT_HASH, genesis_block
from repro.chain.clock import SimulatedClock
from repro.chain.transaction import Transaction
from repro.crypto.keys import KeyPair


@pytest.fixture
def sender_keypair():
    return KeyPair.from_seed("tx-sender")


@pytest.fixture
def recipient():
    return KeyPair.from_seed("tx-recipient").address


def _make_tx(sender_keypair, recipient, **overrides):
    fields = dict(
        sender=sender_keypair.address,
        to=recipient,
        nonce=0,
        method="submit",
        args=(5,),
        kwargs={"memo": "hello"},
        value=0,
    )
    fields.update(overrides)
    return Transaction(**fields)


# --- transactions -----------------------------------------------------------------


def test_calldata_includes_selector_and_args(sender_keypair, recipient):
    tx = _make_tx(sender_keypair, recipient)
    assert len(tx.calldata) > 4
    assert tx.is_contract_call


def test_plain_transfer_has_empty_calldata(sender_keypair, recipient):
    tx = _make_tx(sender_keypair, recipient, method=None, args=(), kwargs={}, value=10)
    assert tx.calldata == b""
    assert not tx.is_contract_call


def test_sign_and_verify(sender_keypair, recipient):
    tx = _make_tx(sender_keypair, recipient)
    assert not tx.verify_signature()
    tx.sign_with(sender_keypair)
    assert tx.verify_signature()


def test_signature_binds_all_fields(sender_keypair, recipient):
    tx = _make_tx(sender_keypair, recipient).sign_with(sender_keypair)
    # Tamper with each covered field and check the signature breaks.
    for attribute, value in [
        ("nonce", 5),
        ("value", 123),
        ("method", "other"),
        ("args", (6,)),
        ("gas_limit", 1),
    ]:
        tampered = _make_tx(sender_keypair, recipient)
        tampered.signature = tx.signature
        setattr(tampered, attribute, value)
        assert not tampered.verify_signature(), attribute


def test_signature_from_wrong_key_rejected(sender_keypair, recipient):
    other = KeyPair.from_seed("other-signer")
    tx = _make_tx(sender_keypair, recipient)
    tx.sign_with(other)
    assert not tx.verify_signature()


def test_transaction_hash_changes_with_content(sender_keypair, recipient):
    tx1 = _make_tx(sender_keypair, recipient).sign_with(sender_keypair)
    tx2 = _make_tx(sender_keypair, recipient, nonce=1).sign_with(sender_keypair)
    assert tx1.hash() != tx2.hash()
    assert len(tx1.hash()) == 32


def test_describe_mentions_method_and_nonce(sender_keypair, recipient):
    tx = _make_tx(sender_keypair, recipient)
    text = tx.describe()
    assert "submit" in text
    assert "nonce=0" in text


# --- blocks ----------------------------------------------------------------------------


def test_genesis_block_shape():
    block = genesis_block(timestamp=100)
    assert block.number == 0
    assert block.parent_hash == GENESIS_PARENT_HASH
    assert block.transaction_count == 0


def test_block_hash_covers_transactions(sender_keypair, recipient):
    tx = _make_tx(sender_keypair, recipient).sign_with(sender_keypair)
    empty = Block(number=1, parent_hash=b"\x00" * 32, timestamp=1)
    full = Block(number=1, parent_hash=b"\x00" * 32, timestamp=1, transactions=[tx])
    assert empty.hash() != full.hash()
    assert len(full.hash()) == 32


def test_block_hash_covers_parent():
    a = Block(number=1, parent_hash=b"\x01" * 32, timestamp=1)
    b = Block(number=1, parent_hash=b"\x02" * 32, timestamp=1)
    assert a.hash() != b.hash()


# --- clock ---------------------------------------------------------------------------------


def test_clock_advances_monotonically():
    clock = SimulatedClock(start=1000)
    assert clock.now() == 1000
    clock.advance(60)
    assert clock.now() == 1060
    clock.set(2000)
    assert clock.now() == 2000


def test_clock_rejects_going_backwards():
    clock = SimulatedClock(start=1000)
    with pytest.raises(ValueError):
        clock.advance(-1)
    with pytest.raises(ValueError):
        clock.set(999)
