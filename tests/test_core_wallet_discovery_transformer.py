"""Tests for client/owner wallets, service discovery and the Fig. 4 transformer."""

import pytest

from repro.chain.contract import Contract, external, method_visibility, public
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import (
    ClientWallet,
    OwnerWallet,
    TokenType,
    make_smacs_enabled,
)
from repro.core.discovery import ServiceDiscovery
from repro.core.smacs_contract import SMACSContract
from repro.core.wallet import NoTokenServiceKnown


# --- wallets -------------------------------------------------------------------------


def test_client_wallet_requires_known_service(chain, alice, recorder):
    wallet = ClientWallet(alice)
    with pytest.raises(NoTokenServiceKnown):
        wallet.request_token(recorder, TokenType.SUPER)


def test_client_wallet_one_stop_call(chain, alice, recorder, token_service):
    wallet = ClientWallet(alice, {recorder.this: token_service})
    receipt = wallet.call_with_token(recorder, "submit", amount=11,
                                     token_type=TokenType.ARGUMENT)
    assert receipt.success
    assert chain.read(recorder, "total") == 11


def test_argument_calls_must_use_keywords(chain, alice, recorder, token_service):
    wallet = ClientWallet(alice, {recorder.this: token_service})
    with pytest.raises(ValueError):
        wallet.call_with_token(recorder, "submit", 11, token_type=TokenType.ARGUMENT)


def test_owner_wallet_preloads_ts_address(chain, owner, token_service):
    owner_wallet = OwnerWallet(owner, token_service)
    receipt = owner_wallet.deploy_protected(ProtectedRecorder, one_time_bitmap_bits=512)
    contract = receipt.return_value
    assert contract.token_service_address() == token_service.address
    assert contract.owner == owner.address
    assert contract.bitmap_storage_slots() == 2


def test_owner_wallet_rule_updates_flow_to_service(chain, owner, alice, eve, token_service,
                                                   recorder):
    from repro.core.acr import WhitelistRule

    owner_wallet = OwnerWallet(owner, token_service)
    owner_wallet.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    alice_wallet = ClientWallet(alice, {recorder.this: token_service})
    eve_wallet = ClientWallet(eve, {recorder.this: token_service})
    assert alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    from repro.core import TokenDenied

    with pytest.raises(TokenDenied):
        eve_wallet.request_token(recorder, TokenType.METHOD, "submit")


# --- service discovery (§VII-B) ----------------------------------------------------------


def test_discovery_resolves_ts_from_contract_metadata(chain, owner, alice, token_service):
    discovery = ServiceDiscovery(chain)
    discovery.publish("https://ts.example.org", token_service)
    owner_wallet = OwnerWallet(owner, token_service)
    contract = owner_wallet.deploy_protected(
        ProtectedRecorder, ts_url="https://ts.example.org"
    ).return_value

    assert discovery.url_for(contract.this) == "https://ts.example.org"
    assert discovery.resolve(contract.this) is token_service
    assert discovery.known_urls() == ["https://ts.example.org"]

    wallet = ClientWallet(alice, discovery=discovery)
    receipt = wallet.call_with_token(contract, "submit", 5, token_type=TokenType.METHOD)
    assert receipt.success


def test_discovery_returns_none_for_unpublished_contract(chain, owner, token_service, recorder):
    discovery = ServiceDiscovery(chain)
    assert discovery.url_for(recorder.this) is None
    assert discovery.resolve(recorder.this) is None


# --- the Fig. 4 transformer -------------------------------------------------------------------


class LegacyVault(Contract):
    """A legacy contract in the style of Fig. 4's left column."""

    def constructor(self, start: int = 0) -> None:
        self.storage["value"] = start

    @external
    def f(self) -> int:
        self.h()
        return self.storage["value"]

    @public
    def h(self) -> int:
        return self.storage.increment("value")

    @public
    def read(self) -> int:
        return self.storage["value"]


def test_transformer_generates_protected_subclass():
    generated = make_smacs_enabled(LegacyVault)
    assert issubclass(generated, SMACSContract)
    assert issubclass(generated, LegacyVault)
    assert generated.__name__ == "SMACSLegacyVault"
    assert set(generated._smacs_protected_methods) == {"f", "h", "read"}
    # Internal twins exist with internal visibility.
    assert method_visibility(generated._h) == "internal"
    assert getattr(generated.f, "_smacs_protected", False)


def test_transformer_respects_protect_and_skip_filters():
    only_f = make_smacs_enabled(LegacyVault, protect={"f"}, name="OnlyF")
    assert only_f._smacs_protected_methods == ("f",)
    skip_read = make_smacs_enabled(LegacyVault, skip={"read"}, name="SkipRead")
    assert "read" not in skip_read._smacs_protected_methods


def test_transformer_rejects_non_contracts_and_double_wrapping():
    with pytest.raises(TypeError):
        make_smacs_enabled(object)  # type: ignore[arg-type]
    generated = make_smacs_enabled(LegacyVault, name="Once")
    with pytest.raises(TypeError):
        make_smacs_enabled(generated)


def test_transformed_contract_enforces_tokens_end_to_end(chain, owner, alice, token_service):
    generated = make_smacs_enabled(LegacyVault)
    owner_wallet = OwnerWallet(owner, token_service)
    contract = owner_wallet.deploy_protected(generated, 5).return_value
    assert chain.state.storage_get(contract.this, "value") == 5

    # Without a token the legacy behaviour is now blocked.
    assert not alice.transact(contract, "h").success

    wallet = ClientWallet(alice, {contract.this: token_service})
    receipt = wallet.call_with_token(contract, "h", token_type=TokenType.METHOD)
    assert receipt.success

    # f() calls h() internally; one token for f is enough (Fig. 4 split).
    receipt = wallet.call_with_token(contract, "f", token_type=TokenType.METHOD)
    assert receipt.success
    assert receipt.return_value == 7


def test_transformed_contract_keeps_legacy_semantics(chain, owner, alice, token_service):
    legacy_owner = chain.create_account("legacy-owner", seed="legacy-owner")
    legacy = legacy_owner.deploy(LegacyVault, 5).return_value
    alice.transact(legacy, "h")
    legacy_value = chain.read(legacy, "read")

    generated = make_smacs_enabled(LegacyVault)
    protected = OwnerWallet(owner, token_service).deploy_protected(generated, 5).return_value
    wallet = ClientWallet(alice, {protected.this: token_service})
    wallet.call_with_token(protected, "h", token_type=TokenType.METHOD)
    protected_value = chain.state.storage_get(protected.this, "value")

    assert legacy_value == protected_value == 6
