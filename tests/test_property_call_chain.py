"""Property-based tests for the call-chain token array (§IV-D).

The :class:`~repro.core.call_chain.TokenBundle` wire format is the only part
of a SMACS transaction assembled by *clients* and parsed by *contracts*, so
its decoder is attack surface: round-trips must be lossless, per-contract
extraction exact, and malformed arrays (truncated, misaligned, or listing a
contract twice) must be rejected rather than silently reinterpreted.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.call_chain import TokenBundle, normalise_token_argument
from repro.core.token import TOKEN_SIZE

pytestmark = pytest.mark.slow  # hypothesis-heavy: the CI slow lane

_ENTRY_SIZE = 20 + TOKEN_SIZE

addresses = st.binary(min_size=20, max_size=20)
token_blobs = st.binary(min_size=TOKEN_SIZE, max_size=TOKEN_SIZE)
entry_maps = st.dictionaries(addresses, token_blobs, min_size=0, max_size=6)
nonempty_entry_maps = st.dictionaries(addresses, token_blobs, min_size=1, max_size=6)


@given(entries=entry_maps)
@settings(max_examples=80, deadline=None)
def test_bundle_roundtrip(entries):
    bundle = TokenBundle(entries)
    decoded = TokenBundle.from_bytes(bundle.to_bytes())
    assert len(decoded) == len(bundle)
    assert decoded.addresses() == bundle.addresses()  # order preserved
    for address, raw in entries.items():
        assert decoded.token_for(address) == raw


@given(entries=nonempty_entry_maps)
@settings(max_examples=80, deadline=None)
def test_entry_extraction_per_contract(entries):
    bundle = TokenBundle(entries)
    for address, raw in entries.items():
        assert address in bundle
        assert bundle.token_for(address) == raw
    # A contract not in the chain extracts nothing.
    absent = bytes(b ^ 0xFF for b in next(iter(entries)))
    if absent not in entries:
        assert bundle.token_for(absent) is None
        assert absent not in bundle


@given(entries=nonempty_entry_maps, cut=st.integers(min_value=1, max_value=_ENTRY_SIZE - 1))
@settings(max_examples=80, deadline=None)
def test_truncated_arrays_rejected(entries, cut):
    raw = TokenBundle(entries).to_bytes()
    with pytest.raises(ValueError):
        TokenBundle.from_bytes(raw[:-cut])


@given(entries=nonempty_entry_maps, junk=st.binary(min_size=1, max_size=_ENTRY_SIZE - 1))
@settings(max_examples=80, deadline=None)
def test_misaligned_suffix_rejected(entries, junk):
    raw = TokenBundle(entries).to_bytes() + junk
    with pytest.raises(ValueError):
        TokenBundle.from_bytes(raw)


@given(entries=nonempty_entry_maps, shadow=token_blobs)
@settings(max_examples=80, deadline=None)
def test_overlapping_entries_rejected(entries, shadow):
    """An array listing the same contract twice is ambiguous -- the decoder
    must refuse it instead of letting the later entry shadow the earlier."""
    bundle = TokenBundle(entries)
    victim = bundle.addresses()[0]
    raw = bundle.to_bytes() + victim + shadow
    with pytest.raises(ValueError):
        TokenBundle.from_bytes(raw)


@given(entries=nonempty_entry_maps)
@settings(max_examples=40, deadline=None)
def test_normalise_token_argument_bundle_path(entries):
    bundle = TokenBundle(entries)
    normalised = normalise_token_argument(bundle.to_bytes())
    if len(bundle) == 1 and len(bundle.to_bytes()) == TOKEN_SIZE:
        pytest.skip("single-entry arrays cannot collide with a bare token")
    assert isinstance(normalised, TokenBundle)
    assert normalised.addresses() == bundle.addresses()


@given(address=addresses, blob=token_blobs)
@settings(max_examples=40, deadline=None)
def test_client_side_add_still_overwrites(address, blob):
    """``add`` (the client-side builder) may replace a token -- only the wire
    decoder treats duplicates as malformed."""
    bundle = TokenBundle({address: bytes(TOKEN_SIZE)})
    bundle.add(address, blob)
    assert len(bundle) == 1
    assert bundle.token_for(address) == blob


def test_bad_entry_sizes_rejected():
    with pytest.raises(ValueError):
        TokenBundle({b"\x01" * 19: bytes(TOKEN_SIZE)})
    with pytest.raises(ValueError):
        TokenBundle({b"\x01" * 20: bytes(TOKEN_SIZE - 1)})
