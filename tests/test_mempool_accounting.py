"""Regression tests for the mempool's per-sender accounting.

Two bug families fixed in this PR:

* ``Mempool.remove`` left zeroed ``_pending_nonces`` / ``_pending_spend``
  entries behind forever (one dict key per sender that ever passed through
  -- unbounded growth under sender churn) and masked accounting underflows
  behind ``.get(sender, <fallback>)`` defaults;
* between ``Blockchain.enqueue_validated`` and ``Mempool.remove`` a
  transaction was counted in *both* the pool's nonce reservations and the
  ``chain.pending`` scan, so the sender's next-nonce admission was spuriously
  rejected as "bad nonce".
"""

import pytest

from repro.chain import Blockchain
from repro.chain.transaction import Transaction
from repro.pipeline.mempool import Mempool


@pytest.fixture
def chain():
    return Blockchain(auto_mine=False)


@pytest.fixture
def mempool(chain):
    return Mempool(chain)


def _transfer(account, to, nonce, value=0):
    tx = Transaction(sender=account.address, to=to.address, nonce=nonce, value=value)
    return tx.sign_with(account.keypair)


# --- churn: tables must not grow one key per sender forever -------------------------


def test_sender_churn_leaves_no_tracked_entries(chain, mempool):
    """Millions-of-senders-shaped churn: admit/remove waves of distinct senders.

    After every wave drains, both per-sender tables must be empty -- the old
    code kept one zeroed entry per sender forever.
    """
    sink = chain.create_account("sink", seed="churn-sink")
    waves, senders_per_wave = 4, 30
    for wave in range(waves):
        accounts = [
            chain.create_account(seed=f"churn-{wave}-{i}")
            for i in range(senders_per_wave)
        ]
        txs = []
        for i, account in enumerate(accounts):
            # Mix value-carrying and zero-value traffic: both code paths.
            txs.append(_transfer(account, sink, nonce=0, value=7 if i % 2 else 0))
        decisions = mempool.admit_many(txs)
        assert all(d.admitted for d in decisions)
        assert mempool.stats()["tracked_nonce_senders"] == senders_per_wave
        mempool.remove(txs)
        stats = mempool.stats()
        assert stats["tracked_nonce_senders"] == 0
        assert stats["tracked_spend_senders"] == 0
        assert stats["accounting_underflows"] == 0
        assert len(mempool) == 0


def test_zero_value_calls_never_create_spend_entries(chain, mempool):
    sink = chain.create_account("sink", seed="zero-sink")
    sender = chain.create_account("sender", seed="zero-sender")
    txs = [_transfer(sender, sink, nonce=n, value=0) for n in range(3)]
    assert all(d.admitted for d in mempool.admit_many(txs))
    # While pooled: nonces are tracked, but no spend entry ever appears.
    assert mempool.stats()["tracked_nonce_senders"] == 1
    assert mempool.stats()["tracked_spend_senders"] == 0
    mempool.remove(txs)
    assert mempool.stats()["tracked_nonce_senders"] == 0


def test_partial_removal_keeps_remaining_counts(chain, mempool):
    sink = chain.create_account("sink", seed="partial-sink")
    sender = chain.create_account("sender", seed="partial-sender")
    txs = [_transfer(sender, sink, nonce=n, value=5) for n in range(3)]
    assert all(d.admitted for d in mempool.admit_many(txs))
    mempool.remove(txs[:1])
    stats = mempool.stats()
    assert stats["tracked_nonce_senders"] == 1
    assert stats["tracked_spend_senders"] == 1
    assert stats["accounting_underflows"] == 0
    mempool.remove(txs[1:])
    assert mempool.stats()["tracked_nonce_senders"] == 0
    assert mempool.stats()["tracked_spend_senders"] == 0


# --- underflows are counted, not masked ---------------------------------------------


def test_nonce_underflow_is_counted_not_masked(chain, mempool):
    sink = chain.create_account("sink", seed="uf-sink")
    sender = chain.create_account("sender", seed="uf-sender")
    tx = _transfer(sender, sink, nonce=0, value=0)
    assert mempool.admit(tx).admitted
    # White-box: corrupt the books the way the old fallback silently hid.
    del mempool._pending_nonces[sender.address]
    mempool.remove([tx])
    stats = mempool.stats()
    assert stats["accounting_underflows"] == 1
    # No resurrected entry either -- the table stays clean.
    assert stats["tracked_nonce_senders"] == 0


def test_spend_underflow_is_counted_not_masked(chain, mempool):
    sink = chain.create_account("sink", seed="ufs-sink")
    sender = chain.create_account("sender", seed="ufs-sender")
    tx = _transfer(sender, sink, nonce=0, value=100)
    assert mempool.admit(tx).admitted
    mempool._pending_spend[sender.address] = 40  # books disagree with the pool
    mempool.remove([tx])
    stats = mempool.stats()
    assert stats["accounting_underflows"] == 1
    assert stats["tracked_spend_senders"] == 0


def test_remove_of_unknown_tx_is_a_noop(chain, mempool):
    sink = chain.create_account("sink", seed="noop-sink")
    sender = chain.create_account("sender", seed="noop-sender")
    never_admitted = _transfer(sender, sink, nonce=0, value=3)
    mempool.remove([never_admitted])
    stats = mempool.stats()
    assert stats["accounting_underflows"] == 0
    assert stats["tracked_nonce_senders"] == 0
    assert stats["tracked_spend_senders"] == 0


# --- admission/inclusion handoff double-count ---------------------------------------


def test_enqueued_tx_is_not_double_counted(chain, mempool):
    """A tx in both the pool and ``chain.pending`` must count once.

    This is the executor handoff window: ``enqueue_validated`` ran but
    ``mempool.remove`` has not yet.  The old ``chain.pending`` scan counted
    the tx on top of its pool reservation, so the sender's next transaction
    was rejected as "bad nonce"."""
    sink = chain.create_account("sink", seed="dc-sink")
    sender = chain.create_account("sender", seed="dc-sender")
    tx0 = _transfer(sender, sink, nonce=0, value=1)
    assert mempool.admit(tx0).admitted
    chain.enqueue_validated(tx0)  # the handoff window opens
    tx1 = _transfer(sender, sink, nonce=1, value=1)
    decision = mempool.admit(tx1)
    assert decision.admitted, decision.reason
    # Close the window the way the executor does and check the books settle.
    chain.mine_block()
    mempool.remove([tx0])
    tx2 = _transfer(sender, sink, nonce=2, value=1)
    assert mempool.admit(tx2).admitted
    mempool.remove([tx1, tx2])
    assert mempool.stats()["accounting_underflows"] == 0


def test_enqueued_only_tx_still_counts_for_admission(chain, mempool):
    """A tx in ``chain.pending`` but NOT in the pool must still hold a nonce."""
    sink = chain.create_account("sink", seed="eo-sink")
    sender = chain.create_account("sender", seed="eo-sender")
    tx0 = _transfer(sender, sink, nonce=0, value=1)
    assert mempool.admit(tx0).admitted
    chain.enqueue_validated(tx0)
    # The pool forgets the tx while it still sits in chain.pending (remove
    # reported before the block is mined): the cached dedup must be
    # invalidated, and the enqueued copy alone must keep holding nonce 0.
    mempool.remove([tx0])
    assert mempool.admit(_transfer(sender, sink, nonce=1, value=1)).admitted
    duplicate_nonce = mempool.admit(_transfer(sender, sink, nonce=1, value=2))
    assert not duplicate_nonce.admitted
    assert duplicate_nonce.reason == "bad nonce"


def test_admission_scan_is_cached_across_calls(chain, mempool):
    """The per-admit ``chain.pending`` walk is gone: counts rebuild only when
    the pending list changes."""
    sink = chain.create_account("sink", seed="cache-sink")
    senders = [chain.create_account(seed=f"cache-{i}") for i in range(4)]
    for sender in senders:
        tx = _transfer(sender, sink, nonce=0, value=1)
        assert mempool.admit(tx).admitted
        chain.enqueue_validated(tx)
        mempool.remove([tx])
    # Admissions against an unchanged pending list must reuse the cache.
    mempool._inclusion_ref = None
    assert mempool.admit(_transfer(senders[0], sink, nonce=1)).admitted
    cached = mempool._inclusion_counts
    assert mempool.admit(_transfer(senders[1], sink, nonce=1)).admitted
    assert mempool._inclusion_counts is cached
