"""The service gateway: wire codec, envelopes, error paths, rule epochs."""

from __future__ import annotations

import json
import random

import pytest

from repro.api import (
    Backoff,
    DEFAULT_RETRY_CODES,
    ErrorCode,
    GatewayClient,
    InProcessTransport,
    RETRYABLE_CODES,
    ServiceGateway,
    SmacsError,
    TokenDenied,
    WIRE_VERSION,
    build_service,
)
from repro.api import codec
from repro.core import ClientWallet, OwnerWallet, TokenType
from repro.core.acr import AccessDecision, RuleSet, WhitelistRule
from repro.core.token_request import TokenRequest
from repro.core.token_service import IssuanceResult, TokenService
from repro.crypto.keys import KeyPair

ROUTE = "https://ts.gateway.example"


@pytest.fixture
def gateway(chain, ts_keypair):
    gateway = ServiceGateway()
    service = TokenService(keypair=ts_keypair, rules=RuleSet(), clock=chain.clock)
    gateway.register(ROUTE, service)
    return gateway


@pytest.fixture
def client(gateway):
    return gateway.client_for(ROUTE)


# --- codec round trips --------------------------------------------------------------


def test_token_request_round_trips_all_types(recorder, alice):
    requests = [
        TokenRequest.super_token(recorder.this, alice.address),
        TokenRequest.method_token(recorder.this, alice.address, "submit", one_time=True),
        TokenRequest.argument_token(
            recorder.this, alice.address, "transfer",
            {"amount": 7, "to": b"\x01" * 20, "memo": "hi", "flag": True},
        ),
    ]
    for request in requests:
        decoded = codec.decode_token_request(codec.encode_token_request(request))
        assert decoded == request
        # The Fig. 2 wire layout agrees too (same structured content).
        assert decoded.encode() == request.encode()


def test_issuance_result_round_trips(token_service, recorder, alice, eve):
    issued = token_service.submit(
        TokenRequest.method_token(recorder.this, alice.address, "submit", one_time=True)
    )[0]
    token_service.update_rules(
        lambda rules: rules.add_rule(WhitelistRule([alice.address]))
    )
    denied = token_service.submit(
        TokenRequest.method_token(recorder.this, eve.address, "submit")
    )[0]

    decoded_ok = codec.decode_issuance_result(codec.encode_issuance_result(issued))
    assert decoded_ok.issued
    assert decoded_ok.token.to_bytes() == issued.token.to_bytes()
    assert decoded_ok.request == issued.request

    decoded_denied = codec.decode_issuance_result(codec.encode_issuance_result(denied))
    assert not decoded_denied.issued
    assert decoded_denied.code is ErrorCode.DENIED
    assert isinstance(decoded_denied.error, TokenDenied)
    assert decoded_denied.decision.reason == denied.decision.reason


def test_unsafe_argument_values_are_rejected_at_encode_time(recorder, alice):
    class Opaque:
        pass

    request = TokenRequest.argument_token(
        recorder.this, alice.address, "m", {"x": Opaque()}
    )
    with pytest.raises(SmacsError) as excinfo:
        codec.encode_token_request(request)
    assert excinfo.value.code is ErrorCode.MALFORMED_REQUEST


def test_result_failure_decision_defaults_reference_the_code(recorder, alice):
    request = TokenRequest.method_token(recorder.this, alice.address, "submit")
    failure = IssuanceResult.failure(
        request, SmacsError("no quorum", ErrorCode.COUNTER_TIMEOUT)
    )
    assert failure.code is ErrorCode.COUNTER_TIMEOUT
    assert "COUNTER_TIMEOUT" in failure.decision.reason
    decoded = codec.decode_issuance_result(codec.encode_issuance_result(failure))
    assert decoded.code is ErrorCode.COUNTER_TIMEOUT
    assert decoded.error.retryable


# --- envelope / transport error paths -----------------------------------------------


def _error_of(raw: bytes) -> dict:
    envelope = json.loads(raw.decode())
    assert envelope["ok"] is False
    return envelope["error"]


def test_unknown_route_is_a_stable_error(gateway):
    raw = codec.encode_request_envelope("address", "https://nowhere.example", {})
    assert _error_of(gateway.handle(raw))["code"] == "UNKNOWN_ROUTE"


def test_unknown_op_is_unsupported(gateway):
    raw = codec.encode_request_envelope("frobnicate", ROUTE, {})
    assert _error_of(gateway.handle(raw))["code"] == "UNSUPPORTED"


def test_wrong_wire_version_is_unsupported(gateway):
    envelope = {"smacs": 99, "op": "address", "route": ROUTE, "body": {}}
    raw = json.dumps(envelope).encode()
    assert _error_of(gateway.handle(raw))["code"] == "UNSUPPORTED"


def test_garbage_bytes_are_malformed_not_a_crash(gateway):
    assert _error_of(gateway.handle(b"\xff\x00 not json"))["code"] == "MALFORMED_REQUEST"


def test_malformed_submit_body(gateway):
    raw = codec.encode_request_envelope("submit", ROUTE, {"requests": "nope"})
    assert _error_of(gateway.handle(raw))["code"] == "MALFORMED_REQUEST"


def test_describe_lists_routes(client):
    described = client.describe()
    assert described["version"] == WIRE_VERSION
    assert ROUTE in described["routes"]


def test_transport_counts_wire_traffic(client, recorder, alice):
    client.submit(TokenRequest.method_token(recorder.this, alice.address, "submit"))
    stats = client.stats()
    transport = stats["transport"]
    assert transport["requests"] >= 1
    assert transport["bytes_sent"] > 0 and transport["bytes_received"] > 0


# --- rule epochs (EXPIRED_RULESET) --------------------------------------------------


def test_stale_epoch_is_rejected(gateway, client, alice):
    current = json.loads(
        gateway.handle(codec.encode_request_envelope("get_rules", ROUTE, {})).decode()
    )["body"]
    # A concurrent owner update lands first...
    client.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    # ...so replaying the previously read epoch must fail.
    raw = codec.encode_request_envelope(
        "replace_rules", ROUTE, {"config": current["config"], "epoch": current["epoch"]}
    )
    assert _error_of(gateway.handle(raw))["code"] == "EXPIRED_RULESET"


def test_wire_rule_update_preserves_programmatic_rules(gateway, client, alice, eve):
    """A wire-level rule replacement must never drop in-process-only rules:
    a fail-closed PredicateRule survives any gateway update_rules."""
    from repro.core.acr import PredicateRule

    service = gateway.issuer_for(ROUTE)
    service.update_rules(lambda rules: rules.add_rule(
        PredicateRule(lambda request: request.client != eve.address, name="ban-eve")
    ))
    client.update_rules(lambda rules: rules.add_rule(
        WhitelistRule([alice.address, eve.address])
    ))
    results = client.submit([
        TokenRequest.method_token(b"\x22" * 20, alice.address, "m"),
        TokenRequest.method_token(b"\x22" * 20, eve.address, "m"),
    ])
    assert results[0].issued
    # eve is whitelisted by the wire update but still banned by the
    # in-process predicate the config cannot express.
    assert results[1].code is ErrorCode.DENIED
    assert "ban-eve" in service.rules.rule_names()


def test_client_update_rules_retries_past_a_conflict(gateway, client, alice, bob):
    inner_transport = client.transport
    original_send = inner_transport.send
    state = {"injected": False}

    def racing_send(raw: bytes) -> bytes:
        # Inject one concurrent update between the client's read and replace.
        if b'"op": "replace_rules"' in raw and not state["injected"]:
            state["injected"] = True
            gateway._rule_epochs[ROUTE] += 1
        return original_send(raw)

    inner_transport.send = racing_send
    client.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    assert state["injected"]
    results = client.submit(
        [
            TokenRequest.method_token(b"\x11" * 20, alice.address, "m"),
            TokenRequest.method_token(b"\x11" * 20, bob.address, "m"),
        ]
    )
    assert results[0].issued
    assert results[1].code is ErrorCode.DENIED


# --- the full loop through the wire -------------------------------------------------


def test_wallet_through_gateway_client_verifies_on_chain(chain, owner, alice):
    service = build_service(
        "sharded",
        keypair=KeyPair.from_seed("gateway-e2e-ts"),
        rules=RuleSet(),
        clock=chain.clock,
        shards=2,
        index_block_size=8,
    )
    gateway = ServiceGateway()
    gateway.register(ROUTE, service)
    client = gateway.client_for(ROUTE)

    from repro.contracts.protected_target import ProtectedRecorder

    protected = OwnerWallet(owner, client).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=1024
    ).return_value
    wallet = ClientWallet(alice, {protected.this: client})
    receipt = wallet.call_with_token(
        protected, "submit", amount=3, token_type=TokenType.ARGUMENT, one_time=True
    )
    assert receipt.success, receipt.error
    assert chain.read(protected, "entries") == 1


def test_gateway_stats_are_wire_safe_json(client, recorder, alice):
    client.submit(TokenRequest.method_token(recorder.this, alice.address, "submit"))
    stats = client.stats()
    json.dumps(stats)  # must not raise: every leaf is JSON-serialisable


def test_decision_encoding_is_faithful():
    decision = AccessDecision.deny("client not on sender-whitelist")
    assert not decision.allowed and decision.reason


# --- retry backoff ------------------------------------------------------------------


class FlakyTransport:
    """Fails the first N sends with a given code, then delegates for real."""

    def __init__(self, inner, failures: int, code: ErrorCode):
        self.inner = inner
        self.failures = failures
        self.code = code
        self.attempts = 0

    def send(self, raw: bytes) -> bytes:
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise SmacsError("endpoint down", self.code)
        return self.inner.send(raw)

    def close(self) -> None:
        self.inner.close()

    def describe(self):
        return {"kind": "flaky", "attempts": self.attempts}


def _flaky_client(gateway, failures, code, *, backoff=None, retry_codes=None):
    transport = FlakyTransport(InProcessTransport(gateway), failures, code)
    kwargs = {}
    if backoff is not None:
        kwargs["backoff"] = backoff
    if retry_codes is not None:
        kwargs["retry_codes"] = retry_codes
    return GatewayClient(transport, ROUTE, **kwargs), transport


def test_backoff_delays_are_jittered_and_capped():
    backoff = Backoff(base=0.05, cap=0.2, rng=random.Random(7))
    for attempt in range(8):
        bound = min(0.2, 0.05 * 2**attempt)
        for _ in range(20):
            assert 0.0 <= backoff.delay(attempt) <= bound
    # injectable sleep: pause() reports exactly what it slept
    slept = []
    backoff = Backoff(base=0.05, cap=0.2, sleep=slept.append, rng=random.Random(7))
    paused = [backoff.pause(attempt) for attempt in range(4)]
    assert slept == paused


def test_client_retries_unavailable_with_backoff(gateway):
    slept: list[float] = []
    client, transport = _flaky_client(
        gateway, 2, ErrorCode.UNAVAILABLE,
        backoff=Backoff(sleep=slept.append, rng=random.Random(1)),
    )
    assert client.describe()["routes"] == [ROUTE]
    assert transport.attempts == 3  # two failures were re-sent, not surfaced
    assert client.retries_performed == 2
    assert len(slept) == 2
    assert all(0.0 <= delay <= 1.0 for delay in slept)


def test_client_without_backoff_fails_fast(gateway):
    client, transport = _flaky_client(gateway, 1, ErrorCode.UNAVAILABLE)
    with pytest.raises(SmacsError) as excinfo:
        client.describe()
    assert excinfo.value.code is ErrorCode.UNAVAILABLE
    assert transport.attempts == 1  # exactly as before backoff existed


def test_rate_limited_is_not_retried_by_default(gateway):
    """RATE_LIMITED is a policy answer: re-sending would fight the limiter
    for the tenant's own budget, so the default retry set excludes it."""
    slept: list[float] = []
    client, transport = _flaky_client(
        gateway, 1, ErrorCode.RATE_LIMITED,
        backoff=Backoff(sleep=slept.append, rng=random.Random(2)),
    )
    assert ErrorCode.RATE_LIMITED not in DEFAULT_RETRY_CODES
    with pytest.raises(SmacsError) as excinfo:
        client.describe()
    assert excinfo.value.code is ErrorCode.RATE_LIMITED
    assert transport.attempts == 1 and slept == []


def test_opt_in_retry_codes_widen_the_retry_set(gateway):
    client, transport = _flaky_client(
        gateway, 1, ErrorCode.RATE_LIMITED,
        backoff=Backoff(sleep=lambda _s: None, rng=random.Random(3)),
        retry_codes=RETRYABLE_CODES,
    )
    assert client.describe()["version"] == WIRE_VERSION
    assert transport.attempts == 2


def test_retry_budget_exhaustion_reraises(gateway):
    slept: list[float] = []
    client, transport = _flaky_client(
        gateway, 99, ErrorCode.COUNTER_TIMEOUT,
        backoff=Backoff(retries=2, sleep=slept.append, rng=random.Random(4)),
    )
    with pytest.raises(SmacsError) as excinfo:
        client.describe()
    assert excinfo.value.code is ErrorCode.COUNTER_TIMEOUT
    assert transport.attempts == 3  # initial send + the whole retry budget
    assert len(slept) == 2
