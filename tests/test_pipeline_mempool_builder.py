"""Unit tests for the pipeline's mempool admission and block builder."""

import pytest

from repro.chain import Blockchain
from repro.chain.transaction import Transaction
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import OwnerWallet, TokenType
from repro.core.acr import RuleSet
from repro.core.token import Token
from repro.core.token_request import TokenRequest
from repro.core.token_service import TokenService
from repro.crypto.keys import KeyPair
from repro.crypto.sigcache import SignatureCache
from repro.pipeline import BitmapView, BlockBuilder, Mempool


@pytest.fixture
def cache():
    return SignatureCache(maxsize=16384)


@pytest.fixture
def batch_chain(cache):
    chain = Blockchain(auto_mine=False)
    chain.evm.signature_cache = cache
    return chain


@pytest.fixture
def service(batch_chain, cache):
    return TokenService(
        keypair=KeyPair.from_seed("pool-ts"),
        rules=RuleSet(),
        clock=batch_chain.clock,
        signature_cache=cache,
    )


@pytest.fixture
def protected(batch_chain, service):
    batch_chain.auto_mine = True
    owner = batch_chain.create_account("owner", seed="pool-owner")
    receipt = OwnerWallet(owner, service).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=1024
    )
    batch_chain.auto_mine = False
    assert receipt.success
    return receipt.return_value


@pytest.fixture
def client(batch_chain):
    batch_chain.auto_mine = True
    account = batch_chain.create_account("client", seed="pool-client")
    batch_chain.auto_mine = False
    return account


@pytest.fixture
def mempool(batch_chain, cache):
    return Mempool(batch_chain, signature_cache=cache)


def _token_tx(client, protected, service, one_time=False, amount=1, nonce=None):
    request = TokenRequest.method_token(
        protected.this, client.address, "submit", one_time=one_time
    )
    token = service.issue_token(request)
    tx = Transaction(
        sender=client.address,
        to=protected.this,
        nonce=client.nonce if nonce is None else nonce,
        method="submit",
        args=(amount,),
        kwargs={"token": token.to_bytes()},
        gas_limit=300_000,
    )
    return tx.sign_with(client.keypair), token


# --- admission ---------------------------------------------------------------------


def test_admits_valid_token_transaction(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service)
    decision = mempool.admit(tx)
    assert decision.admitted, decision.reason
    assert len(mempool) == 1


def test_rejects_duplicate_transaction(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service)
    assert mempool.admit(tx).admitted
    decision = mempool.admit(tx)
    assert not decision.admitted
    assert decision.reason == "duplicate transaction"


def test_rejects_invalid_signature(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service)
    tx.signature = None
    assert mempool.admit(tx).reason == "invalid signature"


def test_rejects_bad_nonce(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service, nonce=7)
    assert mempool.admit(tx).reason == "bad nonce"


def test_tracks_in_pool_nonces(mempool, client, protected, service):
    first, _ = _token_tx(client, protected, service, nonce=0)
    second, _ = _token_tx(client, protected, service, nonce=1)
    assert mempool.admit(first).admitted
    assert mempool.admit(second).admitted  # nonce 1 is next *given the pool*
    replay, _ = _token_tx(client, protected, service, amount=9, nonce=1)
    assert mempool.admit(replay).reason == "bad nonce"


def test_rejects_expired_token(mempool, batch_chain, client, protected, service):
    tx, _ = _token_tx(client, protected, service)
    batch_chain.clock.advance(service.token_lifetime + 60)
    assert mempool.admit(tx).reason == "expired token"


def test_rejects_malformed_token(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service)
    tx.kwargs["token"] = b"\xff" * 13
    tx.sign_with(client.keypair)
    assert mempool.admit(tx).reason == "malformed or missing token entry"


def test_rejects_foreign_ts_signature_when_cached(mempool, client, protected, service, cache):
    """A token signed by an untrusted key is refused at admission once its
    recovery is known to the cache (here: primed by the foreign issuer)."""
    foreign = TokenService(
        keypair=KeyPair.from_seed("untrusted-ts"),
        rules=RuleSet(),
        clock=service.clock,
        signature_cache=cache,  # foreign issuer shares the node cache
    )
    tx, _ = _token_tx(client, protected, foreign)
    assert mempool.admit(tx).reason == "token not signed by the trusted Token Service"


def test_unknown_signature_defers_to_execution(mempool, client, protected, service, cache):
    """Foreign tokens with unknown recovery are admitted (screening is
    cheap-only) and left for the executor / EVM to refuse."""
    foreign = TokenService(
        keypair=KeyPair.from_seed("untrusted-ts-2"),
        rules=RuleSet(),
        clock=service.clock,
        signature_cache=None,  # nothing primes the node cache
    )
    tx, _ = _token_tx(client, protected, foreign)
    assert mempool.admit(tx).admitted


def test_duplicate_one_time_index_screened_in_pool(mempool, client, protected, service):
    tx, token = _token_tx(client, protected, service, one_time=True, nonce=0)
    assert mempool.admit(tx).admitted
    # A second transaction reusing the same token (same index), next nonce.
    replayed = Transaction(
        sender=client.address,
        to=protected.this,
        nonce=1,
        method="submit",
        args=(2,),
        kwargs={"token": token.to_bytes()},
        gas_limit=300_000,
    ).sign_with(client.keypair)
    assert mempool.admit(replayed).reason == "duplicate one-time index in pool"


def test_consumed_index_screened_against_chain_state(
    mempool, batch_chain, client, protected, service
):
    tx, token = _token_tx(client, protected, service, one_time=True, nonce=0)
    batch_chain.auto_mine = True
    receipt = batch_chain.send_transaction(tx)
    assert receipt.success
    batch_chain.auto_mine = False
    replayed = Transaction(
        sender=client.address,
        to=protected.this,
        nonce=1,
        method="submit",
        args=(2,),
        kwargs={"token": token.to_bytes()},
        gas_limit=300_000,
    ).sign_with(client.keypair)
    assert mempool.admit(replayed).reason == "one-time index already consumed on-chain"


def test_reservation_freed_after_removal(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service, one_time=True)
    assert mempool.admit(tx).admitted
    assert mempool.stats()["reserved_one_time_indexes"] == 1
    mempool.remove([tx])
    assert mempool.stats()["reserved_one_time_indexes"] == 0
    assert len(mempool) == 0


def test_plain_transfer_needs_no_token(mempool, batch_chain, client):
    recipient = KeyPair.from_seed("someone").address
    tx = Transaction(
        sender=client.address, to=recipient, nonce=0, value=10
    ).sign_with(client.keypair)
    assert mempool.admit(tx).admitted


def test_cumulative_pool_spend_cannot_exceed_balance(mempool, batch_chain, client):
    """Two transfers each covered by the balance -- but not jointly -- must
    not both be admitted: the second would blow up mid-block (admitted
    transactions skip re-validation at inclusion)."""
    balance = batch_chain.state.balance_of(client.address)
    recipient = KeyPair.from_seed("someone").address
    first = Transaction(
        sender=client.address, to=recipient, nonce=0, value=balance
    ).sign_with(client.keypair)
    second = Transaction(
        sender=client.address, to=recipient, nonce=1, value=balance
    ).sign_with(client.keypair)
    assert mempool.admit(first).admitted
    assert mempool.admit(second).reason == "insufficient funds"
    # Inclusion frees the committed value again.
    mempool.remove([first])
    assert mempool.stats()["pooled"] == 0


def test_oversized_gas_limit_rejected_at_admission(mempool, batch_chain, client):
    """A transaction that can never fit one block must not be pooled -- it
    would strand forever (holding any one-time index it reserves)."""
    recipient = KeyPair.from_seed("someone").address
    tx = Transaction(
        sender=client.address, to=recipient, nonce=0, value=1,
        gas_limit=mempool.max_gas_limit + 1,
    ).sign_with(client.keypair)
    decision = mempool.admit(tx)
    assert decision.reason == "transaction gas limit exceeds the block gas limit"
    assert len(mempool) == 0


# --- the read-only bitmap view -------------------------------------------------------


def test_bitmap_view_reads_window_without_mutating(
    batch_chain, client, protected, service
):
    view = BitmapView(batch_chain.evm.state, protected.this)
    assert view.size == 1024
    assert view.screen(5) is None  # unknown index: may be accepted
    tx, token = _token_tx(client, protected, service, one_time=True)
    batch_chain.auto_mine = True
    assert batch_chain.send_transaction(tx).success
    batch_chain.auto_mine = False
    assert view.screen(token.index) == "one-time index already consumed on-chain"
    # The view itself never changed contract state.
    assert protected.bitmap_state()["size"] == 1024


def test_bitmap_view_on_contract_without_bitmap(batch_chain, service):
    batch_chain.auto_mine = True
    owner = batch_chain.create_account("owner2", seed="pool-owner-2")
    receipt = OwnerWallet(owner, service).deploy_protected(ProtectedRecorder)
    batch_chain.auto_mine = False
    view = BitmapView(batch_chain.evm.state, receipt.return_value.this)
    assert view.screen(0) == "contract has no one-time bitmap"


# --- the block builder -----------------------------------------------------------------


def test_builder_packs_under_gas_limit(mempool, client, protected, service):
    for nonce in range(6):
        tx, _ = _token_tx(client, protected, service, nonce=nonce)
        assert mempool.admit(tx).admitted
    builder = BlockBuilder(mempool, block_gas_limit=4 * 300_000)
    plan = builder.build()
    assert plan.transaction_count == 4
    assert plan.gas_budget == 4 * 300_000
    assert plan.deferred == 2
    assert 0 < plan.fill_ratio <= 1


def test_builder_preserves_nonce_order_on_deferral(
    mempool, batch_chain, protected, service
):
    batch_chain.auto_mine = True
    a = batch_chain.create_account("a", seed="builder-a")
    b = batch_chain.create_account("b", seed="builder-b")
    batch_chain.auto_mine = False
    txs = []
    for nonce in range(3):
        tx, _ = _token_tx(a, protected, service, nonce=nonce)
        txs.append(tx)
        tx, _ = _token_tx(b, protected, service, nonce=nonce)
        txs.append(tx)
    for tx in txs:
        assert mempool.admit(tx).admitted
    # Room for three calls only: a0, b0, a1 fit; once a2 would overflow the
    # limit nothing later from the same sender may jump the queue.
    builder = BlockBuilder(mempool, block_gas_limit=3 * 300_000)
    plan = builder.build()
    nonces_by_sender = {}
    for tx in plan.transactions:
        nonces_by_sender.setdefault(tx.sender, []).append(tx.nonce)
    for sender, nonces in nonces_by_sender.items():
        assert nonces == sorted(nonces)
        assert nonces[0] == 0  # no sender starts mid-sequence
    assert plan.transaction_count == 3


def test_builder_leaves_pool_untouched_until_removal(mempool, client, protected, service):
    tx, _ = _token_tx(client, protected, service)
    mempool.admit(tx)
    builder = BlockBuilder(mempool)
    plan = builder.build()
    assert plan.transaction_count == 1
    assert len(mempool) == 1  # crash safety: still pooled
    mempool.remove(plan.transactions)
    assert len(mempool) == 0


def test_builder_rejects_nonpositive_gas_limit(mempool):
    with pytest.raises(ValueError):
        BlockBuilder(mempool, block_gas_limit=0)


def test_empty_pool_builds_empty_plan(mempool):
    plan = BlockBuilder(mempool).build()
    assert not plan
    assert plan.transaction_count == 0


# --- misc -------------------------------------------------------------------------------


def test_token_type_bundle_entry_screened(mempool, batch_chain, client, protected, service):
    """A call-chain bundle missing this contract's entry is refused."""
    from repro.core.call_chain import TokenBundle

    other = KeyPair.from_seed("other-contract").address
    request = TokenRequest.method_token(protected.this, client.address, "submit")
    token = service.issue_token(request)
    bundle = TokenBundle({other: token.to_bytes()})
    tx = Transaction(
        sender=client.address,
        to=protected.this,
        nonce=0,
        method="submit",
        args=(1,),
        kwargs={"token": bundle.to_bytes()},
        gas_limit=300_000,
    ).sign_with(client.keypair)
    assert mempool.admit(tx).reason == "malformed or missing token entry"


def test_admission_accepts_token_object_argument(mempool, client, protected, service):
    request = TokenRequest.method_token(protected.this, client.address, "submit")
    token = service.issue_token(request)
    assert isinstance(token, Token)
    tx = Transaction(
        sender=client.address,
        to=protected.this,
        nonce=0,
        method="submit",
        args=(1,),
        kwargs={"token": token.to_bytes()},
        gas_limit=300_000,
    ).sign_with(client.keypair)
    assert mempool.admit(tx).admitted
    assert TokenType.METHOD is token.token_type


# --- executor pre-warm accounting --------------------------------------------------


def test_prewarm_counts_intra_block_replays_as_hits(batch_chain, client, protected):
    """Two transactions carrying the same uncached (non-one-time) token: the
    batch computes the curve math once, so pre_warm must report one miss and
    one hit -- `misses` means "curve math ran here"."""
    from repro.pipeline.executor import BlockExecutor

    # A TS that does NOT share the node cache, so nothing is primed.
    foreign = TokenService(
        keypair=KeyPair.from_seed("pool-ts"),  # same trusted key, separate box
        rules=RuleSet(),
        clock=batch_chain.clock,
    )
    request = TokenRequest.method_token(
        protected.this, client.address, "submit", one_time=False
    )
    token = foreign.issue_token(request)
    txs = [
        Transaction(
            sender=client.address,
            to=protected.this,
            nonce=client.nonce + i,
            method="submit",
            args=(i,),
            kwargs={"token": token.to_bytes()},
            gas_limit=300_000,
        ).sign_with(client.keypair)
        for i in range(2)
    ]
    executor = BlockExecutor(batch_chain)
    hits, misses = executor.pre_warm(txs)
    assert (hits, misses) == (1, 1)
    # Once warmed, the same tokens are pure hits.
    assert executor.pre_warm(txs) == (2, 0)
