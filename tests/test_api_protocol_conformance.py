"""Protocol conformance: one suite, every issuer stack.

The acceptance bar for the unified API: the same requests produce the same
decisions through the serial, sharded and replicated stacks -- and through
the wire-level gateway clients wrapping them -- with one-time indexes unique
per stack, batch submissions that never raise mid-batch, and tokens that
verify on-chain regardless of which stack signed them.
"""

from __future__ import annotations

import pytest

from repro.api import (
    ErrorCode,
    ServiceGateway,
    SmacsError,
    TokenDenied,
    TokenIssuer,
    build_service,
    conforms,
    connect,
    issue_one,
    serve,
    try_issue_one,
    unwrap,
)
from repro.api.middleware import RetryFailover
from repro.consensus.counter import CounterTimeout
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import ClientWallet, OwnerWallet, TokenType
from repro.core.acr import RuleSet, WhitelistRule
from repro.core.replication import ReplicatedTokenService
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair

STACKS = [
    "serial",
    "sharded",
    "replicated",
    "gateway-serial",
    "gateway-replicated",
    "tcp-serial",
    "tcp-replicated",
    # Observability cells: full tracing on both ends of the wire, in each
    # codec lane.  The conformance bar is that instrumentation (trace
    # contexts on the envelopes, stage timers in the gateway) is invisible
    # to every behavioural test in this file.
    "tcp-traced",
    "tcp-traced-binary",
    # Resilience cells: every envelope carries the optional absolute
    # ``deadline`` field (a budget generous enough never to fire), in each
    # codec lane.  The conformance bar is that a deadline-bearing peer and
    # a legacy peer are behaviourally indistinguishable on this wire.
    "tcp-deadline",
    "tcp-deadline-binary",
]


def _whitelisted_rules(*addresses) -> RuleSet:
    rules = RuleSet()
    rules.add_rule(WhitelistRule(list(addresses), name="sender-whitelist"))
    return rules


def _build_stack(name: str, *, keypair, rules, clock, cleanups=None) -> TokenIssuer:
    kwargs = dict(
        keypair=keypair,
        rules=rules,
        clock=clock,
        shards=4,
        index_block_size=8,
        replica_count=3,
        seed=29,
    )
    if name.startswith("gateway-"):
        base = build_service(name.split("-", 1)[1], **kwargs)
        gateway = ServiceGateway()
        gateway.register("https://ts.conformance.example", base)
        return gateway.client_for("https://ts.conformance.example")
    if name.startswith("tcp-traced"):
        from repro.api import codec
        from repro.obs import Observability

        base = build_service("serial", **kwargs)
        gateway = ServiceGateway(observability=Observability())
        gateway.register("https://ts.conformance.example", base)
        server = serve(gateway)
        lane = codec.CODEC_BINARY if name.endswith("binary") else codec.CODEC_JSON
        client = connect(server.url, wire_codec=lane)
        client.observability = Observability()
        if cleanups is not None:
            cleanups.append(client.close)
            cleanups.append(server.close)
        return client
    if name.startswith("tcp-deadline"):
        from repro.api import codec

        base = build_service("serial", **kwargs)
        gateway = ServiceGateway()
        gateway.register("https://ts.conformance.example", base)
        server = serve(gateway)
        lane = codec.CODEC_BINARY if name.endswith("binary") else codec.CODEC_JSON
        client = connect(server.url, wire_codec=lane)
        client.deadline_s = 30.0  # stamped on every envelope, never expires
        if cleanups is not None:
            cleanups.append(client.close)
            cleanups.append(server.close)
        return client
    if name.startswith("tcp-"):
        # The same gateway, but reached through real sockets: an asyncio
        # GatewayServer and a pooled TcpTransport.  The conformance bar is
        # that nothing in this file can tell the difference.
        base = build_service(name.split("-", 1)[1], **kwargs)
        gateway = ServiceGateway()
        gateway.register("https://ts.conformance.example", base)
        server = serve(gateway)
        client = connect(server.url)
        if cleanups is not None:
            cleanups.append(client.close)
            cleanups.append(server.close)
        return client
    return build_service(name, **kwargs)


@pytest.fixture(params=STACKS)
def stack(request, chain, alice):
    keypair = KeyPair.from_seed("conformance-ts")
    rules = _whitelisted_rules(alice.address)
    cleanups = []
    try:
        yield _build_stack(
            request.param,
            keypair=keypair,
            rules=rules,
            clock=chain.clock,
            cleanups=cleanups,
        )
    finally:
        for cleanup in reversed(cleanups):
            cleanup()


# --- structural conformance ---------------------------------------------------------


def test_stack_satisfies_the_protocol(stack):
    assert conforms(stack)
    assert isinstance(stack, TokenIssuer)


def test_address_is_a_20_byte_address_everywhere(stack):
    assert isinstance(stack.address, bytes)
    assert len(stack.address) == 20
    # Every stack shares the signing key, so every stack shares the address.
    assert stack.address == KeyPair.from_seed("conformance-ts").address


def test_stats_is_a_dict_with_issuance_counters(stack, alice, recorder):
    stack.submit(TokenRequest.method_token(recorder.this, alice.address, "submit"))
    stats = stack.stats()
    assert isinstance(stats, dict)
    assert stats["issued"] >= 1


# --- same requests, same decisions --------------------------------------------------


def _mixed_batch(contract, alice, eve):
    return [
        TokenRequest.method_token(contract, alice, "submit"),
        TokenRequest.method_token(contract, eve, "submit"),  # not whitelisted
        TokenRequest.argument_token(contract, alice, "submit", {"amount": 7}),
        TokenRequest.super_token(contract, eve),  # not whitelisted
        TokenRequest.method_token(contract, alice, "submit", one_time=True),
    ]


def test_same_requests_same_decisions_across_all_stacks(chain, alice, eve, recorder):
    keypair = KeyPair.from_seed("conformance-ts")
    outcomes = {}
    for name in STACKS:
        cleanups = []
        try:
            issuer = _build_stack(
                name,
                keypair=keypair,
                rules=_whitelisted_rules(alice.address),
                clock=chain.clock,
                cleanups=cleanups,
            )
            results = issuer.submit(
                _mixed_batch(recorder.this, alice.address, eve.address)
            )
        finally:
            for cleanup in reversed(cleanups):
                cleanup()
        outcomes[name] = [
            (result.issued, result.code.value if result.code is not None else None)
            for result in results
        ]
    reference = outcomes[STACKS[0]]
    assert reference == [
        (True, None),
        (False, "DENIED"),
        (True, None),
        (False, "DENIED"),
        (True, None),
    ]
    for name in STACKS[1:]:
        assert outcomes[name] == reference, name


def test_one_time_indexes_unique_per_stack(stack, alice, recorder):
    request = TokenRequest.method_token(
        recorder.this, alice.address, "submit", one_time=True
    )
    results = stack.submit([request] * 12)
    assert all(result.issued for result in results)
    indexes = [result.token.index for result in results]
    assert len(set(indexes)) == len(indexes)
    assert all(result.token.is_one_time for result in results)


def test_single_request_is_the_one_element_batch(stack, alice, recorder):
    request = TokenRequest.method_token(recorder.this, alice.address, "submit")
    as_scalar = stack.submit(request)
    as_batch = stack.submit([request])
    assert len(as_scalar) == len(as_batch) == 1
    assert as_scalar[0].issued and as_batch[0].issued
    # Non-one-time issuance is deterministic: byte-identical tokens.
    assert as_scalar[0].token.to_bytes() == as_batch[0].token.to_bytes()


# --- failure carrying (never raise mid-batch) ---------------------------------------


def test_denials_are_carried_not_raised(stack, alice, eve, recorder):
    batch = _mixed_batch(recorder.this, alice.address, eve.address)
    results = stack.submit(batch)  # must not raise despite the denials
    assert len(results) == len(batch)
    denied = [result for result in results if not result.issued]
    assert len(denied) == 2
    for result in denied:
        assert result.code is ErrorCode.DENIED
        assert isinstance(result.error, SmacsError)
        assert result.error.code is ErrorCode.DENIED
        assert not result.decision.allowed


def test_issue_one_raises_the_carried_error(stack, alice, eve, recorder):
    granted = issue_one(
        stack, TokenRequest.method_token(recorder.this, alice.address, "submit")
    )
    assert granted.token_type is TokenType.METHOD
    with pytest.raises(TokenDenied):
        issue_one(stack, TokenRequest.method_token(recorder.this, eve.address, "submit"))
    reported = try_issue_one(
        stack, TokenRequest.method_token(recorder.this, eve.address, "submit")
    )
    assert reported.code is ErrorCode.DENIED


# --- rule management through the protocol -------------------------------------------


def test_update_rules_through_the_protocol(stack, alice, bob, recorder):
    request = TokenRequest.method_token(recorder.this, bob.address, "submit")
    assert stack.submit(request)[0].code is ErrorCode.DENIED

    def admit_bob(rules: RuleSet) -> None:
        for rule in rules.rules_for(TokenType.METHOD):
            if isinstance(rule, WhitelistRule):
                rule.add(bob.address)

    stack.update_rules(admit_bob)
    assert stack.submit(request)[0].issued
    # The update widened the existing whitelist rather than replacing it:
    # alice stays admitted through every stack (including the wire path).
    assert stack.submit(
        TokenRequest.method_token(recorder.this, alice.address, "submit")
    )[0].issued


# --- on-chain equivalence -----------------------------------------------------------


def test_tokens_from_any_stack_verify_on_chain(stack, chain, owner, alice):
    receipt = OwnerWallet(owner, stack).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=4096
    )
    assert receipt.success
    protected = receipt.return_value
    wallet = ClientWallet(alice, {protected.this: stack})
    for amount in (1, 2):
        receipt = wallet.call_with_token(
            protected, "submit", amount=amount,
            token_type=TokenType.METHOD, one_time=True,
        )
        assert receipt.success, receipt.error
    assert chain.read(protected, "entries") == 2


# --- transient failures stay inside results -----------------------------------------


def test_exhausted_failover_carries_counter_timeout(chain, alice, recorder, monkeypatch):
    stack = _build_stack(
        "replicated",
        keypair=KeyPair.from_seed("conformance-ts"),
        rules=_whitelisted_rules(alice.address),
        clock=chain.clock,
    )
    base = unwrap(stack)
    assert isinstance(base, ReplicatedTokenService)
    for replica in base.replicas:
        def always_timeout(requests, _r=replica):
            raise CounterTimeout("injected: cluster has no quorum")

        monkeypatch.setattr(replica, "submit", always_timeout)
    request = TokenRequest.method_token(
        recorder.this, alice.address, "submit", one_time=True
    )
    results = stack.submit([request, request])  # never raises mid-batch
    assert len(results) == 2
    for result in results:
        assert not result.issued
        assert result.code is ErrorCode.COUNTER_TIMEOUT
        assert result.error is not None and result.error.retryable


def test_transient_timeout_recovers_through_retry_layer(chain, alice, recorder, monkeypatch):
    stack = _build_stack(
        "replicated",
        keypair=KeyPair.from_seed("conformance-ts"),
        rules=_whitelisted_rules(alice.address),
        clock=chain.clock,
    )
    retry = stack
    assert isinstance(retry, RetryFailover)
    base = unwrap(stack)
    victim = base.replicas[base._next % len(base.replicas)]
    original = victim.submit
    calls = {"n": 0}

    def flaky(requests):
        if calls["n"] == 0:
            calls["n"] += 1
            raise CounterTimeout("injected: leader election in progress")
        return original(requests)

    monkeypatch.setattr(victim, "submit", flaky)
    request = TokenRequest.method_token(
        recorder.this, alice.address, "submit", one_time=True
    )
    results = stack.submit([request, request])
    assert all(result.issued for result in results)
    assert retry.failovers == 1
    assert retry.recovered == 2


# --- satellite: normalized signatures ------------------------------------------------


def test_update_rules_signatures_are_uniformly_typed():
    import inspect
    import typing

    from repro.core.batch_service import BatchTokenService
    from repro.core.token_service import TokenService

    for cls in (TokenService, BatchTokenService, ReplicatedTokenService):
        hints = typing.get_type_hints(cls.update_rules)
        assert hints["mutate"] == typing.Callable[[RuleSet], None], cls
        assert hints["return"] is type(None), cls

    hints = typing.get_type_hints(BatchTokenService.issue_token)
    from repro.core.token import Token

    assert hints["return"] is Token
    stats_hints = typing.get_type_hints(BatchTokenService.stats)
    assert stats_hints["return"] == dict[str, typing.Any]
    assert inspect.signature(BatchTokenService.submit).parameters.keys() == \
        inspect.signature(TokenService.submit).parameters.keys()
