"""Property tests for the compact binary codec lane and its negotiation.

The binary lane must be a drop-in for JSON: any envelope a gateway or client
can produce round-trips byte-for-value through the TLV packer, the sniffing
that drives per-envelope negotiation is unambiguous, and anything that is
neither lane maps to ``MALFORMED_REQUEST`` (never an exception leak).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import codec
from repro.core.errors import ErrorCode, SmacsError

# JSON-representable values: what envelope bodies are made of.  Binary also
# carries arbitrary ints (beyond IEEE range) and utf-8 text.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**80), max_value=2**80),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
bodies = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=12), children, max_size=6),
    ),
    max_leaves=24,
).map(lambda value: {"payload": value})


# --- negotiation / sniffing ---------------------------------------------------------


def test_sniffing_is_unambiguous():
    json_raw = codec.encode_request_envelope("stats", "r", {}, codec=codec.CODEC_JSON)
    binary_raw = codec.encode_request_envelope("stats", "r", {}, codec=codec.CODEC_BINARY)
    assert codec.sniff_codec(json_raw) == codec.CODEC_JSON
    assert codec.sniff_codec(b"   \t\n" + json_raw) == codec.CODEC_JSON
    assert codec.sniff_codec(binary_raw) == codec.CODEC_BINARY
    assert binary_raw.startswith(codec.BINARY_MAGIC)
    assert len(binary_raw) < len(json_raw)


@pytest.mark.parametrize("junk", [b"", b"\x00\x01", b"<xml/>", b"\xc5S", b"null"])
def test_unknown_codec_is_malformed(junk):
    with pytest.raises(SmacsError) as failure:
        codec.sniff_codec(junk)
    assert failure.value.code is ErrorCode.MALFORMED_REQUEST


def test_unknown_codec_name_is_rejected_at_encode_time():
    with pytest.raises(SmacsError) as failure:
        codec.encode_response_envelope({}, codec="msgpack")
    assert failure.value.code is ErrorCode.MALFORMED_REQUEST


def test_binary_version_mismatch_is_unsupported():
    raw = bytearray(codec.encode_response_envelope({}, codec=codec.CODEC_BINARY))
    raw[len(codec.BINARY_MAGIC)] = 99  # corrupt the version byte
    with pytest.raises(SmacsError) as failure:
        codec.decode_response_envelope(bytes(raw))
    assert failure.value.code is ErrorCode.UNSUPPORTED


def test_truncated_and_padded_binary_envelopes_are_malformed():
    raw = codec.encode_response_envelope({"a": 1}, codec=codec.CODEC_BINARY)
    for mangled in (raw[:-1], raw + b"\x00"):
        with pytest.raises(SmacsError) as failure:
            codec.decode_response_envelope(mangled)
        assert failure.value.code is ErrorCode.MALFORMED_REQUEST


# --- round-trip properties ----------------------------------------------------------


@pytest.mark.slow
@given(body=bodies, lane=st.sampled_from(codec.CODECS))
@settings(max_examples=200, deadline=None)
def test_request_envelopes_round_trip_in_both_lanes(body, lane):
    raw = codec.encode_request_envelope("submit", "route-7", body, codec=lane)
    op, route, decoded = codec.decode_request_envelope(raw)
    assert (op, route) == ("submit", "route-7")
    assert decoded == body


@pytest.mark.slow
@given(body=bodies, lane=st.sampled_from(codec.CODECS))
@settings(max_examples=200, deadline=None)
def test_response_envelopes_round_trip_in_both_lanes(body, lane):
    raw = codec.encode_response_envelope(body, codec=lane)
    assert codec.decode_response_envelope(raw) == body


@pytest.mark.slow
@given(
    message=st.text(max_size=60),
    code=st.sampled_from(list(ErrorCode)),
    lane=st.sampled_from(codec.CODECS),
)
@settings(max_examples=100, deadline=None)
def test_error_envelopes_round_trip_in_both_lanes(message, code, lane):
    raw = codec.encode_error_envelope(SmacsError(message, code), codec=lane)
    with pytest.raises(SmacsError) as failure:
        codec.decode_response_envelope(raw)
    assert failure.value.code is code
    assert message in str(failure.value)


@pytest.mark.slow
@given(value=st.integers())
@settings(max_examples=200, deadline=None)
def test_binary_lane_carries_arbitrary_precision_ints(value):
    raw = codec.encode_response_envelope({"n": value}, codec=codec.CODEC_BINARY)
    assert codec.decode_response_envelope(raw)["n"] == value
