"""Unit tests for secp256k1 group arithmetic."""

import pytest

from repro.crypto import secp256k1
from repro.crypto.secp256k1 import (
    GENERATOR,
    INFINITY,
    N,
    P,
    Point,
    generator_multiply,
    is_on_curve,
    lift_x,
    point_add,
    point_multiply,
    point_negate,
    shamir_multiply,
)


def test_generator_is_on_curve():
    assert is_on_curve(GENERATOR.x, GENERATOR.y)


def test_known_generator_multiple_2():
    # 2*G from the SEC2 test vectors.
    doubled = point_multiply(GENERATOR, 2)
    assert doubled.x == 0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5
    assert doubled.y == 0x1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A


def test_known_generator_multiple_7():
    point = point_multiply(GENERATOR, 7)
    assert point.x == 0x5CBDF0646E5DB4EAA398F365F2EA7A0E3D419B7E0330E39CE92BDDEDCAC4F9BC


def test_point_at_infinity_identity():
    assert point_add(GENERATOR, INFINITY) == GENERATOR
    assert point_add(INFINITY, GENERATOR) == GENERATOR


def test_adding_inverse_gives_infinity():
    assert point_add(GENERATOR, point_negate(GENERATOR)).is_infinity()


def test_scalar_multiply_by_group_order_is_infinity():
    assert point_multiply(GENERATOR, N).is_infinity()


def test_scalar_multiply_matches_repeated_addition():
    accumulated = INFINITY
    for _ in range(5):
        accumulated = point_add(accumulated, GENERATOR)
    assert accumulated == point_multiply(GENERATOR, 5)


def test_generator_table_matches_generic_multiplication():
    scalar = 0xDEADBEEFCAFEBABE1234567890ABCDEF
    via_table = generator_multiply(scalar)
    via_generic = secp256k1._from_jacobian(
        secp256k1._jacobian_multiply(secp256k1._to_jacobian(GENERATOR), scalar)
    )
    assert via_table == via_generic


def test_scalar_multiplication_distributes_over_addition():
    a, b = 1234567, 7654321
    lhs = point_multiply(GENERATOR, a + b)
    rhs = point_add(point_multiply(GENERATOR, a), point_multiply(GENERATOR, b))
    assert lhs == rhs


def test_shamir_multiply_matches_separate_computation():
    p = point_multiply(GENERATOR, 987654321)
    combined = shamir_multiply(111, 222, p)
    expected = point_add(generator_multiply(111), point_multiply(p, 222))
    assert combined == expected


def test_lift_x_recovers_both_parities():
    even = lift_x(GENERATOR.x, is_odd=bool(GENERATOR.y & 1))
    assert even == GENERATOR
    other = lift_x(GENERATOR.x, is_odd=not bool(GENERATOR.y & 1))
    assert other == point_negate(GENERATOR)


def test_lift_x_rejects_non_residue():
    # x = 5 is not the abscissa of any secp256k1 point.
    with pytest.raises(ValueError):
        lift_x(5, is_odd=False)


def test_point_constructor_rejects_off_curve_points():
    with pytest.raises(ValueError):
        Point(1, 1)


def test_field_and_order_are_prime_sized():
    assert P.bit_length() == 256
    assert N.bit_length() == 256
    assert P != N
