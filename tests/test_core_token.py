"""Unit tests for the token format (Fig. 3) and the signed datagram."""

import pytest

from repro.core.token import (
    ONE_TIME_UNSET,
    TOKEN_SIZE,
    MalformedToken,
    Token,
    TokenType,
    decode_index,
    encode_argument_data,
    encode_index,
    signing_datagram,
    signing_digest,
)
from repro.crypto.keys import KeyPair


@pytest.fixture
def ts_keypair():
    return KeyPair.from_seed("ts")


@pytest.fixture
def client():
    return KeyPair.from_seed("client").address


@pytest.fixture
def contract():
    return KeyPair.from_seed("contract").address


def _issue(ts_keypair, token_type, client, contract, expire=10_000, index=ONE_TIME_UNSET,
           method=None, arguments=None):
    digest = signing_digest(token_type, expire, index, client, contract,
                            method=method, arguments=arguments)
    return Token(token_type, expire, index, ts_keypair.sign(digest))


# --- wire layout -----------------------------------------------------------------


def test_token_is_exactly_86_bytes(ts_keypair, client, contract):
    token = _issue(ts_keypair, TokenType.SUPER, client, contract)
    assert TOKEN_SIZE == 86
    assert len(token.to_bytes()) == 86


def test_roundtrip_preserves_all_fields(ts_keypair, client, contract):
    token = _issue(ts_keypair, TokenType.ARGUMENT, client, contract, expire=123456,
                   index=42, method="submit", arguments={"amount": 5})
    decoded = Token.from_bytes(token.to_bytes())
    assert decoded == token
    assert decoded.token_type is TokenType.ARGUMENT
    assert decoded.expire == 123456
    assert decoded.index == 42


def test_one_time_flag_derived_from_index(ts_keypair, client, contract):
    assert not _issue(ts_keypair, TokenType.SUPER, client, contract).is_one_time
    assert _issue(ts_keypair, TokenType.SUPER, client, contract, index=0).is_one_time
    assert _issue(ts_keypair, TokenType.SUPER, client, contract, index=7).is_one_time


def test_expiry_check(ts_keypair, client, contract):
    token = _issue(ts_keypair, TokenType.SUPER, client, contract, expire=1000)
    assert not token.is_expired(now=999)
    assert not token.is_expired(now=1000)
    assert token.is_expired(now=1001)


def test_from_bytes_rejects_wrong_length():
    with pytest.raises(MalformedToken):
        Token.from_bytes(b"\x01" * 85)
    with pytest.raises(MalformedToken):
        Token.from_bytes(b"\x01" * 87)


def test_from_bytes_rejects_unknown_type(ts_keypair, client, contract):
    raw = bytearray(_issue(ts_keypair, TokenType.SUPER, client, contract).to_bytes())
    raw[0] = 0xEE
    with pytest.raises(MalformedToken):
        Token.from_bytes(bytes(raw))


def test_index_encoding_roundtrip_including_sentinel():
    for index in (ONE_TIME_UNSET, 0, 1, 2**63, 2**120):
        assert decode_index(encode_index(index)) == index
    assert encode_index(ONE_TIME_UNSET) == b"\xff" * 16


# --- signed datagram -----------------------------------------------------------------


def test_datagram_layout_prefix(client, contract):
    data = signing_datagram(TokenType.SUPER, 1000, ONE_TIME_UNSET, client, contract)
    assert data[0] == int(TokenType.SUPER)
    assert data[1:5] == (1000).to_bytes(4, "big")
    assert client in data and contract in data


def test_datagram_differs_per_token_type(client, contract):
    super_data = signing_datagram(TokenType.SUPER, 1, 0, client, contract)
    method_data = signing_datagram(TokenType.METHOD, 1, 0, client, contract, method="m")
    argument_data = signing_datagram(TokenType.ARGUMENT, 1, 0, client, contract,
                                     method="m", arguments={"a": 1})
    assert len(super_data) < len(method_data) < len(argument_data)
    assert super_data != method_data != argument_data


def test_method_token_requires_method(client, contract):
    with pytest.raises(ValueError):
        signing_datagram(TokenType.METHOD, 1, 0, client, contract)


def test_argument_encoding_is_canonical():
    assert encode_argument_data({"a": 1, "b": 2}) == encode_argument_data({"b": 2, "a": 1})
    assert encode_argument_data({"a": 1}) != encode_argument_data({"a": 2})


def test_digest_binds_every_field(client, contract):
    reference = signing_digest(TokenType.METHOD, 100, 5, client, contract, method="m")
    variations = [
        signing_digest(TokenType.SUPER, 100, 5, client, contract),
        signing_digest(TokenType.METHOD, 101, 5, client, contract, method="m"),
        signing_digest(TokenType.METHOD, 100, 6, client, contract, method="m"),
        signing_digest(TokenType.METHOD, 100, 5, contract, client, method="m"),
        signing_digest(TokenType.METHOD, 100, 5, client, contract, method="other"),
    ]
    assert all(v != reference for v in variations)


def test_digest_for_matches_signature_verification(ts_keypair, client, contract):
    token = _issue(ts_keypair, TokenType.METHOD, client, contract, method="submit")
    digest = token.digest_for(client, contract, method="submit")
    assert ts_keypair.verify(digest, token.signature)
    wrong = token.digest_for(client, contract, method="other")
    assert not ts_keypair.verify(wrong, token.signature)


def test_token_type_enum_values_are_distinct_bytes():
    values = {int(t) for t in TokenType}
    assert len(values) == 3
    assert all(0 < v < 256 for v in values)
