"""Unit tests for the resilience primitives (repro.resilience + netem).

Each primitive is exercised in isolation with injected clocks and sleepers
-- no sockets, no wall-clock waits.  The wire-level behaviour (gateways
shedding, clients retrying, breakers ejecting real endpoints) lives in
``test_api_resilience.py``; the hypothesis property suites live in
``test_property_resilience.py``.
"""

from __future__ import annotations

import pytest

from repro.core.errors import RETRYABLE_CODES, ErrorCode, SmacsError
from repro.faults import NetemTransport
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionController,
    CircuitBreaker,
    RetryBudget,
)
from repro.resilience.deadline import (
    check_deadline,
    deadline_in,
    decode_deadline,
    remaining,
)


# --- error-code classification (the S2 contract) ------------------------------------


def test_new_error_codes_classify_deliberately():
    # OVERLOADED is the server saying "try later" -- retryable by design.
    assert ErrorCode.OVERLOADED in RETRYABLE_CODES
    # DEADLINE_EXCEEDED means the *caller's* budget is gone; a retry would
    # start over with the same dead deadline.  Never retryable.
    assert ErrorCode.DEADLINE_EXCEEDED not in RETRYABLE_CODES


# --- deadline arithmetic ------------------------------------------------------------


def test_deadline_in_is_absolute_and_requires_a_positive_budget():
    assert deadline_in(5.0, now=lambda: 100.0) == 105.0
    with pytest.raises(ValueError):
        deadline_in(0.0, now=lambda: 100.0)
    with pytest.raises(ValueError):
        deadline_in(-1.0, now=lambda: 100.0)


def test_remaining_clamps_at_zero():
    assert remaining(105.0, now=lambda: 100.0) == 5.0
    assert remaining(105.0, now=lambda: 200.0) == 0.0  # a valid socket timeout


def test_check_deadline_names_the_stage_and_tolerates_none():
    check_deadline(None, stage="gateway", now=lambda: 1e12)  # legacy peer: no-op
    check_deadline(105.0, stage="gateway", now=lambda: 104.9)
    with pytest.raises(SmacsError) as failure:
        check_deadline(105.0, stage="mempool", now=lambda: 105.0)
    assert failure.value.code is ErrorCode.DEADLINE_EXCEEDED
    assert "mempool" in str(failure.value)


@pytest.mark.parametrize(
    "wire_value",
    [None, "soon", True, False, 0, -3.5, float("nan"), float("inf"), [], {}],
)
def test_decode_deadline_degrades_garbage_to_no_deadline(wire_value):
    assert decode_deadline(wire_value) is None


def test_decode_deadline_accepts_positive_numbers():
    assert decode_deadline(1234.5) == 1234.5
    assert decode_deadline(7) == 7.0


# --- circuit breaker ----------------------------------------------------------------


def _breaker(clock, **kwargs):
    defaults = dict(failure_threshold=3, reset_timeout=1.0, half_open_probes=1)
    defaults.update(kwargs)
    return CircuitBreaker(now=lambda: clock["t"], **defaults)


def test_breaker_trips_only_on_consecutive_failures():
    clock = {"t": 0.0}
    breaker = _breaker(clock)
    for _ in range(2):
        breaker.record_failure()
    breaker.record_success()  # resets the streak
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()  # third consecutive: trips
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 1
    assert not breaker.allow()
    assert breaker.rejections == 1


def test_open_breaker_reports_its_retry_horizon():
    clock = {"t": 0.0}
    breaker = _breaker(clock)
    assert breaker.retry_after() == 0.0  # closed: admit now
    for _ in range(3):
        breaker.record_failure()
    assert breaker.retry_after() == pytest.approx(1.0)
    clock["t"] = 0.6
    assert breaker.retry_after() == pytest.approx(0.4)
    clock["t"] = 2.0
    assert breaker.retry_after() == 0.0  # probe-able now


def test_half_open_probe_success_closes_and_failure_reopens():
    clock = {"t": 0.0}
    breaker = _breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    clock["t"] = 1.0  # reset timeout elapses
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # quota of 1 is in flight
    breaker.record_failure()  # probe failed: re-open, timer restarts
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()
    clock["t"] = 2.0
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: close
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_breaker_rejects_bad_configuration():
    for kwargs in (
        {"failure_threshold": 0},
        {"reset_timeout": 0.0},
        {"half_open_probes": 0},
    ):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


# --- admission controller -----------------------------------------------------------


def test_admission_sheds_once_inflight_work_exceeds_the_delay_budget():
    admission = AdmissionController(target_delay_s=0.5, initial_service_s=1.0)
    assert admission.admit() is None  # empty dispatcher: 0s estimated delay
    hint = admission.admit()  # 1 in flight x 1.0s EWMA = 1.0s > 0.5s budget
    assert hint == pytest.approx(0.5)  # the excess over the budget
    stats = admission.stats()
    assert stats["admitted"] == 1
    assert stats["shed"] == 1
    assert stats["inflight"] == 1
    assert admission.estimated_delay_s() == pytest.approx(1.0)


def test_observe_releases_the_slot_and_only_served_requests_teach_the_ewma():
    admission = AdmissionController(
        target_delay_s=0.5, initial_service_s=1.0, ewma_alpha=0.1
    )
    assert admission.admit() is None
    admission.observe(None)  # failed before service: release, learn nothing
    assert admission.stats()["inflight"] == 0
    assert admission.stats()["service_ewma_s"] == 1.0
    assert admission.admit() is None  # the released slot is admittable again
    admission.observe(2.0)  # served in 2s: EWMA moves toward it
    assert admission.stats()["service_ewma_s"] == pytest.approx(1.1)
    admission.observe(None)  # spurious extra release: inflight never negative
    assert admission.stats()["inflight"] == 0


def test_admission_rejects_bad_configuration():
    for kwargs in (
        {"target_delay_s": 0.0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"initial_service_s": 0.0},
    ):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


# --- retry budget -------------------------------------------------------------------


def test_retry_budget_spends_down_then_denies():
    budget = RetryBudget(initial_balance=2.0)
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()  # balance < 1: the retry must not be sent
    stats = budget.stats()
    assert stats["granted"] == 2
    assert stats["denied"] == 1
    assert stats["balance"] == 0.0


def test_successes_earn_retries_at_the_deposit_rate():
    budget = RetryBudget(deposit_per_success=0.25, initial_balance=0.0)
    assert not budget.try_spend()  # broke
    for _ in range(4):
        budget.record_success()
    assert budget.balance == pytest.approx(1.0)
    assert budget.try_spend()  # four successes bought exactly one retry
    assert not budget.try_spend()


def test_retry_budget_balance_caps_at_max():
    budget = RetryBudget(deposit_per_success=5.0, max_balance=3.0)
    for _ in range(10):
        budget.record_success()
    assert budget.balance == 3.0
    with pytest.raises(ValueError):
        RetryBudget(deposit_per_success=0.0)
    with pytest.raises(ValueError):
        RetryBudget(max_balance=0.5)


# --- netem transport ----------------------------------------------------------------


class _EchoTransport:
    """Counts sends; answers with a per-send distinct payload."""

    def __init__(self):
        self.sent: list[bytes] = []
        self.closed = False

    def send(self, raw: bytes) -> bytes:
        self.sent.append(raw)
        return b"answer-%d" % len(self.sent)

    def close(self) -> None:
        self.closed = True

    def describe(self):
        return {"kind": "echo"}


def test_netem_drops_on_a_deterministic_schedule():
    inner = _EchoTransport()
    netem = NetemTransport(inner, drop_every=3)
    assert netem.send(b"a") == b"answer-1"
    assert netem.send(b"b") == b"answer-2"
    with pytest.raises(SmacsError) as failure:
        netem.send(b"c")  # the 3rd request: dropped before the inner send
    assert failure.value.code is ErrorCode.UNAVAILABLE
    assert len(inner.sent) == 2
    assert netem.dropped == 1
    assert netem.send(b"d") == b"answer-3"


def test_netem_duplicates_and_returns_the_first_response():
    inner = _EchoTransport()
    netem = NetemTransport(inner, duplicate_every=2)
    assert netem.send(b"a") == b"answer-1"
    assert netem.send(b"b") == b"answer-2"  # duplicated: inner sees it twice
    assert inner.sent == [b"a", b"b", b"b"]
    assert netem.duplicated == 1


def test_netem_latency_and_jitter_are_deterministic_with_injected_sleep():
    slept: list[float] = []
    netem = NetemTransport(
        _EchoTransport(), latency_s=0.01, jitter_s=0.005, seed=7, sleep=slept.append
    )
    netem.send(b"a")
    netem.send(b"b")
    assert len(slept) == 2
    assert all(0.01 <= delay <= 0.015 for delay in slept)
    assert netem.delay_total_s == pytest.approx(sum(slept))
    # Same seed, same draws: a second run is byte-reproducible.
    replay: list[float] = []
    again = NetemTransport(
        _EchoTransport(), latency_s=0.01, jitter_s=0.005, seed=7, sleep=replay.append
    )
    again.send(b"a")
    again.send(b"b")
    assert replay == slept


def test_netem_close_and_describe_pass_through():
    inner = _EchoTransport()
    netem = NetemTransport(inner, drop_every=4)
    netem.send(b"a")
    netem.close()
    assert inner.closed
    description = netem.describe()
    assert description["kind"] == "netem"
    assert description["requests"] == 1
    assert description["inner"] == {"kind": "echo"}
    with pytest.raises(ValueError):
        NetemTransport(inner, latency_s=-0.1)
    with pytest.raises(ValueError):
        NetemTransport(inner, drop_every=-1)
