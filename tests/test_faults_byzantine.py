"""Byzantine harness units plus the gateway bugs the scenario matrix found.

The harnesses in :mod:`repro.faults.byzantine` sit at real interfaces (the
counter client, the transport, a second signer); these tests pin their
schedules and prove the system-side invariants each one exists to attack.

The ``corrupted content -> MALFORMED_REQUEST`` tests at the bottom are
regressions for a real bug the matrix flushed out: a flip-corrupted frame
that stayed valid JSON but carried an undecodable payload (a damaged hex
address inside a ``replace_rules`` config) used to classify as ``INTERNAL``
and leak a gateway fault for what is the caller's malformed request.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ServiceGateway, codec
from repro.api.gateway import GatewayClient, InProcessTransport
from repro.consensus.counter import CounterCluster, ReplicatedCounter
from repro.core import TokenType
from repro.core.acr import RuleSet, WhitelistRule
from repro.core.errors import ErrorCode, SmacsError
from repro.core.token_request import TokenRequest
from repro.faults import (
    CorruptingTransport,
    EquivocatingCounter,
    StaleLeaderCounter,
    untrusted_twin_service,
)

ROUTE = "https://ts.byzantine.example"


# --- EquivocatingCounter ------------------------------------------------------------


class _HonestCounter:
    def __init__(self) -> None:
        self.value = 0

    def next_index(self) -> int:
        self.value += 1
        return self.value


def test_equivocating_counter_duplicates_on_schedule():
    counter = EquivocatingCounter(_HonestCounter(), duplicate_every=3, skip_every=0)
    indexes = [counter.next_index() for _ in range(9)]
    # Every 3rd call re-serves the previous index; the rest are honest.
    assert indexes == [1, 2, 2, 3, 4, 4, 5, 6, 6]
    assert counter.stats() == {"calls": 9, "duplicates_injected": 3, "skips_injected": 0}


def test_equivocating_counter_skips_burn_honest_indexes():
    counter = EquivocatingCounter(_HonestCounter(), duplicate_every=0, skip_every=4)
    indexes = [counter.next_index() for _ in range(8)]
    # Calls 4 and 8 burn one honest index each before answering.
    assert indexes == [1, 2, 3, 5, 6, 7, 8, 10]
    assert counter.stats()["skips_injected"] == 2
    assert len(set(indexes)) == len(indexes)  # skips never duplicate


def test_equivocating_counter_rejects_negative_schedules():
    with pytest.raises(ValueError):
        EquivocatingCounter(_HonestCounter(), duplicate_every=-1)


# --- StaleLeaderCounter -------------------------------------------------------------


def test_stale_leader_answers_but_never_commits():
    cluster = CounterCluster(size=3, seed=7)
    harness = StaleLeaderCounter(cluster, patience=0.4)
    try:
        first = harness.next_index()  # healthy before the zombie exists
        zombie_id = harness.induce_zombie()
        indexes = [harness.next_index() for _ in range(4)]
        stats = harness.stats()
        # The zombie kept accepting commands ...
        assert stats["zombie_answers"] >= 1
        # ... and not one was ever fulfilled: its answers are inert.
        assert stats["zombie_results"] == 0
        # Every index the client actually issued came from the honest
        # majority: fresh, unique, strictly increasing.
        assert indexes == sorted(set(indexes))
        assert indexes[0] == first + 1
        harness.heal()
        assert harness.zombie_id is None
        after_heal = harness.next_index()
        assert after_heal > indexes[-1]
        assert zombie_id in cluster.nodes
    finally:
        cluster.network.heal_partition()


def test_stale_leader_offer_noops_once_the_node_steps_down():
    cluster = CounterCluster(size=3, seed=11)
    harness = StaleLeaderCounter(cluster, patience=0.4)
    try:
        harness.induce_zombie()
        # Heal the network without telling the harness: the ex-zombie will
        # observe the newer term and step down; the next offer must detect
        # that and clear the pin instead of counting phantom answers.
        cluster.network.heal_partition()
        cluster.network.run_for(1.0)
        before = harness.stats()["zombie_answers"]
        harness.next_index()
        assert harness.zombie_id is None
        assert harness.stats()["zombie_answers"] == before
    finally:
        cluster.network.heal_partition()


# --- CorruptingTransport against the gateway ----------------------------------------


@pytest.fixture
def gateway(chain, token_service):
    gateway = ServiceGateway()
    gateway.register(ROUTE, token_service)
    return gateway


def test_corrupting_transport_yields_malformed_never_internal(gateway, recorder, alice):
    transport = CorruptingTransport(InProcessTransport(gateway), corrupt_every=2, seed=3)
    client = GatewayClient(transport, ROUTE)
    request = TokenRequest.method_token(recorder.this, alice.address, "submit")

    issued, malformed = 0, 0
    for _ in range(12):
        try:
            results = client.submit([request])
        except SmacsError as error:
            # A damaged frame is always the *caller's* problem on the wire:
            # the gateway must never classify it as an internal fault.
            assert error.code is ErrorCode.MALFORMED_REQUEST, error.code
            malformed += 1
        else:
            issued += sum(1 for result in results if result.issued)
    assert transport.corrupted == 6
    assert issued >= 5  # the clean half of the frames still issues
    assert malformed >= 4  # most mutations are detectable damage
    described = transport.describe()
    assert described["corrupted"] == 6
    assert sum(described["mutations"].values()) == 6


def test_corrupting_transport_validates_schedule():
    with pytest.raises(ValueError):
        CorruptingTransport(object(), corrupt_every=0)


# --- untrusted twin signer ----------------------------------------------------------


def test_twin_tokens_are_perfect_and_still_refused_on_chain(
    chain, token_service, recorder, alice, alice_wallet
):
    twin = untrusted_twin_service(token_service)
    assert twin.keypair.address != token_service.keypair.address
    assert twin.rules is token_service.rules  # everything but the key

    request = TokenRequest.method_token(recorder.this, alice.address, "submit")
    forged = twin.submit(request)[0]
    assert forged.issued  # structurally perfect, fresh, well-signed ...

    receipt = alice.transact(recorder, "submit", 5, token=forged.token.to_bytes())
    assert not receipt.success  # ... and refused by ecrecover-vs-trusted
    assert chain.read(recorder, "entries") == 0

    honest = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    assert alice.transact(recorder, "submit", 5, token=honest.to_bytes()).success


# --- gateway regression: corrupted content is MALFORMED, not INTERNAL ---------------


def _error_code_of(raw: bytes) -> str:
    envelope = json.loads(raw.decode())
    assert envelope["ok"] is False
    return envelope["error"]["code"]


def test_replace_rules_with_corrupt_hex_is_malformed_not_internal(gateway, alice):
    # A realistic flip-corruption survivor: valid JSON, damaged hex address.
    config = RuleSet().to_config()
    config["sender"] = {"whitelist": ["0x" + "zz" * 20]}
    raw = codec.encode_request_envelope(
        "replace_rules", ROUTE, {"config": config, "epoch": 0}
    )
    assert _error_code_of(gateway.handle(raw)) == "MALFORMED_REQUEST"
    # The shared ruleset was never touched and the epoch did not advance.
    good = RuleSet()
    good.add_rule(WhitelistRule([alice.address], name="sender-whitelist"))
    ok = codec.encode_request_envelope(
        "replace_rules", ROUTE, {"config": good.to_config(), "epoch": 0}
    )
    response = json.loads(gateway.handle(ok).decode())
    assert response["ok"] is True
    assert response["body"]["epoch"] == 1


def test_submit_with_undecodable_request_content_is_malformed(gateway, recorder, alice):
    good = codec.encode_token_request(
        TokenRequest.method_token(recorder.this, alice.address, "submit")
    )
    bad = dict(good)
    bad["contract"] = "0xnot-a-hex-address"
    raw = codec.encode_request_envelope("submit", ROUTE, {"requests": [bad]})
    assert _error_code_of(gateway.handle(raw)) == "MALFORMED_REQUEST"


def test_replicated_counter_survives_the_harness_interface():
    """The harnesses honour the same counter protocol the service uses."""
    cluster = CounterCluster(size=3, seed=5)
    try:
        counter = EquivocatingCounter(ReplicatedCounter(cluster), duplicate_every=0)
        values = [counter.next_index() for _ in range(3)]
        assert values == sorted(set(values))
        assert counter.value >= values[-1]
    finally:
        cluster.network.heal_partition()
