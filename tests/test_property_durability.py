"""Property-based crash-image tests: recovery is prefix-consistent or loud.

A pristine WAL image is built once from a real workload (base snapshot +
three committed blocks).  Hypothesis then damages it at arbitrary byte
offsets -- truncation, bit flips, or both -- and recovery must land in one
of exactly two outcomes:

* **a prefix**: the recovered state root is one of the roots the pristine
  run actually committed (deployment state or an exact block boundary); or
* **a loud failure**: :class:`RecoveryError` / :class:`CorruptWal`.

What must never happen is a *third* outcome: recovery "succeeding" with a
state root no honest node ever had (a half-applied block).  The per-block
root verification plus the full-recompute cross-check inside
``recover_into`` are what close that door; this suite hammers on it.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import OwnerWallet
from repro.core.acr import RuleSet
from repro.core.replication import ReplicatedTokenService
from repro.crypto.keys import KeyPair
from repro.crypto.sigcache import SignatureCache
from repro.pipeline import ExecutionPipeline, SmacsLoadGenerator
from repro.storage import CorruptWal, DurableStore, RecoveryError, state_root

pytestmark = pytest.mark.slow  # hypothesis-heavy: the CI slow lane


def _node():
    chain = Blockchain(auto_mine=False)
    pipeline = ExecutionPipeline(chain, signature_cache=SignatureCache())
    chain.auto_mine = True
    owner = chain.create_account("owner", seed="prop-owner")
    clients = [chain.create_account(f"c{i}", seed=f"prop-client-{i}") for i in range(4)]
    service = ReplicatedTokenService(
        replica_count=3,
        keypair=KeyPair.from_seed("prop-ts"),
        rules=RuleSet(),
        clock=chain.clock,
        seed=55,
        signature_cache=pipeline.signature_cache,
    )
    recorder = OwnerWallet(owner, service.replicas[0]).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=1024
    ).return_value
    chain.auto_mine = False
    generator = SmacsLoadGenerator(service, recorder, clients)
    return chain, pipeline, generator


_IMAGE: "dict | None" = None


def _pristine_image():
    """Build (once) a real WAL image and the set of roots it committed."""
    global _IMAGE
    if _IMAGE is not None:
        return _IMAGE
    workdir = tempfile.mkdtemp(prefix="smacs-prop-wal-")
    chain, pipeline, generator = _node()
    deployment_root = state_root(chain.state)
    store = DurableStore(workdir, "memory", fsync_on_admit=True)
    store.attach(pipeline)
    roots = {deployment_root}
    for batch in (4, 4, 4):
        pipeline.ingest(generator.from_arrivals([batch]))
        pipeline.run_block()
        roots.add(chain.latest_block.state_root)
    store.close()
    with open(os.path.join(workdir, "wal.log"), "rb") as handle:
        raw = handle.read()
    shutil.rmtree(workdir, ignore_errors=True)
    _IMAGE = {"bytes": raw, "roots": roots}
    return _IMAGE


def _recover(damaged: bytes):
    """Recover a fresh node from the damaged image; returns the report."""
    workdir = tempfile.mkdtemp(prefix="smacs-prop-rec-")
    store = None
    try:
        with open(os.path.join(workdir, "wal.log"), "wb") as handle:
            handle.write(damaged)
        chain, pipeline, _ = _node()
        store = DurableStore(workdir, "memory")
        report = store.recover_into(pipeline)
        # recover_into cross-checks incremental vs full recompute already;
        # re-assert from the outside against the installed chain state.
        assert state_root(chain.state) == report.state_root
        return report
    finally:
        if store is not None:
            store.close()
        shutil.rmtree(workdir, ignore_errors=True)


def _assert_prefix_or_loud(damaged: bytes):
    image = _pristine_image()
    try:
        report = _recover(damaged)
    except (RecoveryError, CorruptWal):
        return  # loud refusal: always a legal outcome for a damaged image
    assert report.state_root in image["roots"], (
        "recovery produced a state root no honest node ever committed "
        f"({report.state_root.hex()})"
    )


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_truncation_at_any_offset_is_prefix_or_loud(data):
    raw = _pristine_image()["bytes"]
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    _assert_prefix_or_loud(raw[:cut])


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_bitflip_at_any_offset_is_prefix_or_loud(data):
    raw = _pristine_image()["bytes"]
    offset = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    mask = data.draw(st.integers(min_value=1, max_value=255))
    damaged = bytearray(raw)
    damaged[offset] ^= mask
    _assert_prefix_or_loud(bytes(damaged))


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_combined_damage_is_prefix_or_loud(data):
    raw = _pristine_image()["bytes"]
    cut = data.draw(st.integers(min_value=1, max_value=len(raw)))
    damaged = bytearray(raw[:cut])
    flips = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, cut - 1)),
                st.integers(min_value=1, max_value=255),
            ),
            max_size=4,
        )
    )
    for offset, mask in flips:
        if offset < len(damaged):
            damaged[offset] ^= mask
    _assert_prefix_or_loud(bytes(damaged))


def test_undamaged_image_recovers_the_final_root():
    image = _pristine_image()
    report = _recover(image["bytes"])
    assert report.state_root in image["roots"]
    assert len(report.blocks) == 3
