"""The batched, sharded Token Service front end (repro.core.batch_service)."""

import pytest

from repro.core import BatchTokenService, ClientWallet, OwnerWallet, TokenType
from repro.core.acr import RuleSet
from repro.core.batch_service import IndexBlockAllocator, ShardCounter
from repro.core.token import Token
from repro.core.token_request import TokenRequest
from repro.core.token_service import TokenService, build_fig6_ruleset
from repro.contracts.protected_target import ProtectedRecorder
from repro.crypto.keys import KeyPair
from repro.crypto.sigcache import SignatureCache

CONTRACT = KeyPair.from_seed("batch-contract").address
CLIENTS = [KeyPair.from_seed(f"batch-client-{i}").address for i in range(6)]


def _service(shards: int = 4, **kwargs) -> BatchTokenService:
    kwargs.setdefault("signature_cache", SignatureCache())
    return BatchTokenService(
        keypair=KeyPair.from_seed("batch-ts"), rules=RuleSet(), shards=shards, **kwargs
    )


def _one_time_requests(count: int) -> list:
    return [
        TokenRequest.method_token(CONTRACT, CLIENTS[i % len(CLIENTS)], "submit",
                                  one_time=True)
        for i in range(count)
    ]


# --- sharded counters ---------------------------------------------------------


def test_block_allocator_leases_disjoint_ranges():
    allocator = IndexBlockAllocator(block_size=8)
    assert allocator.lease() == (0, 8)
    assert allocator.lease() == (8, 16)
    assert allocator.value == 16


def test_block_allocator_restore_never_reuses():
    allocator = IndexBlockAllocator(block_size=8)
    allocator.lease()
    allocator.restore(4)  # stale checkpoint below the live position: ignored
    assert allocator.lease() == (8, 16)
    allocator.restore(100)
    assert allocator.lease() == (100, 108)


def test_shard_counters_issue_globally_unique_indexes():
    allocator = IndexBlockAllocator(block_size=4)
    counters = [ShardCounter(allocator) for _ in range(3)]
    issued = [counters[i % 3].next_index() for i in range(60)]
    assert len(set(issued)) == len(issued)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        BatchTokenService(shards=0)
    with pytest.raises(ValueError):
        IndexBlockAllocator(block_size=0)
    with pytest.raises(ValueError):
        _service().submit_stream([], batch_size=0)
    with pytest.raises(ValueError):
        _service().submit_batch([], affinity="nope")


# --- batch issuance -----------------------------------------------------------


def test_batch_issuance_indexes_unique_across_shards_and_batches():
    service = _service(shards=4, index_block_size=8)
    indexes = []
    for _ in range(3):
        results = service.submit_batch(_one_time_requests(40))
        assert all(result.issued for result in results)
        indexes.extend(result.token.index for result in results)
    assert len(set(indexes)) == len(indexes)
    assert service.issued_count == 120


def test_result_order_matches_request_order():
    service = _service()
    requests = [
        TokenRequest.method_token(CONTRACT, client, "submit") for client in CLIENTS
    ]
    results = service.submit_batch(requests)
    assert [result.request for result in results] == requests


def test_denials_are_reported_in_place_not_raised():
    whitelist = build_fig6_ruleset(CLIENTS[:2])
    service = BatchTokenService(
        keypair=KeyPair.from_seed("batch-ts"), rules=whitelist,
        signature_cache=SignatureCache(),
    )
    requests = [
        TokenRequest.method_token(CONTRACT, client, "submit") for client in CLIENTS[:4]
    ]
    results = service.submit_batch(requests)
    assert [result.issued for result in results] == [True, True, False, False]
    assert service.denied_count == 2


def test_client_affinity_routes_a_client_to_one_shard():
    service = _service(shards=3)
    for client in CLIENTS:
        request = TokenRequest.method_token(CONTRACT, client, "submit")
        shards = {service.shard_for(request) for _ in range(5)}
        assert len(shards) == 1


def test_submit_stream_chunks_into_batches():
    service = _service()
    results = service.submit_stream(_one_time_requests(25), batch_size=10)
    assert len(results) == 25
    assert service.batches_processed == 3


# --- memoised issuance --------------------------------------------------------


def test_duplicate_requests_reuse_the_cached_token():
    cache = SignatureCache()
    service = _service(signature_cache=cache)
    request = TokenRequest.method_token(CONTRACT, CLIENTS[0], "submit")
    first, second = service.submit_batch([request, request])
    assert first.token.to_bytes() == second.token.to_bytes()
    assert cache.hits > 0


def test_memoised_token_is_identical_to_uncached_issuance():
    plain = TokenService(keypair=KeyPair.from_seed("batch-ts"), rules=RuleSet())
    cached = _service(shards=1)
    cached.clock.advance(plain.clock.now() - cached.clock.now())
    request = TokenRequest.method_token(CONTRACT, CLIENTS[0], "submit")
    assert plain.issue_token(request).to_bytes() == cached.issue_token(request).to_bytes()


def test_clock_advance_invalidates_the_token_memo():
    service = _service(shards=1)
    request = TokenRequest.method_token(CONTRACT, CLIENTS[0], "submit")
    before = service.issue_token(request)
    service.clock.advance(60)
    after = service.issue_token(request)
    assert after.expire == before.expire + 60
    assert after.to_bytes() != before.to_bytes()


def test_one_time_duplicates_are_never_memoised():
    service = _service(shards=2)
    request = TokenRequest.method_token(CONTRACT, CLIENTS[0], "submit", one_time=True)
    results = service.submit_batch([request] * 10)
    indexes = {result.token.index for result in results}
    assert len(indexes) == 10


# --- end to end against the chain ---------------------------------------------


def test_batch_issued_tokens_verify_on_chain(chain, owner, alice):
    service = BatchTokenService(
        keypair=KeyPair.from_seed("batch-onchain-ts"), rules=RuleSet(),
        clock=chain.clock, shards=3, signature_cache=SignatureCache(),
    )
    recorder = OwnerWallet(owner, service).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=256
    ).return_value
    wallet = ClientWallet(alice, {recorder.this: service})

    token = wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
    assert isinstance(token, Token)
    first = alice.transact(recorder, "submit", 5, token=token.to_bytes())
    assert first.success, first.error
    # The one-time property still holds through the sharded pipeline.
    replay = alice.transact(recorder, "submit", 5, token=token.to_bytes())
    assert not replay.success


def test_whole_one_time_batch_spendable_when_bitmap_covers_dispersion(chain, owner, alice):
    """Shard-interleaved indexes must not be missed by the Alg. 2 window.

    Shards draw from different leased blocks, so a batch's indexes spread
    over up to ``max_index_dispersion`` positions; as long as the contract's
    bitmap covers that spread, every issued token must be accepted on-chain.
    """
    service = BatchTokenService(
        keypair=KeyPair.from_seed("batch-dispersion-ts"), rules=RuleSet(),
        clock=chain.clock, shards=4, signature_cache=SignatureCache(),
    )
    recorder = OwnerWallet(owner, service).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=service.max_index_dispersion
    ).return_value
    requests = [
        TokenRequest.method_token(recorder.this, alice.address, "submit", one_time=True)
        for _ in range(20)
    ]
    for result in service.submit_batch(requests):
        receipt = alice.transact(recorder, "submit", 1, token=result.token.to_bytes())
        assert receipt.success, (result.token.index, receipt.error)


def test_batch_issued_duplicate_non_one_time_tokens_all_verify(chain, owner, alice):
    service = BatchTokenService(
        keypair=KeyPair.from_seed("batch-onchain-ts"), rules=RuleSet(),
        clock=chain.clock, shards=2, signature_cache=SignatureCache(),
    )
    recorder = OwnerWallet(owner, service).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=256
    ).return_value
    request = TokenRequest.method_token(recorder.this, alice.address, "submit")
    results = service.submit_batch([request] * 3)
    for result in results:  # cached signature, still accepted by Alg. 1
        receipt = alice.transact(recorder, "submit", 7, token=result.token.to_bytes())
        assert receipt.success, receipt.error
