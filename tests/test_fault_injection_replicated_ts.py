"""Fault injection for the Raft-backed Token Service (§VII-B availability).

Three failure families are exercised against the replicated one-time
counter:

* the counter **leader crashes mid-batch** of issuance;
* the cluster suffers a **network partition** that later heals;
* a replica raises a **transient counter timeout**, which the front end must
  retry on a different replica instead of surfacing to the client.

The safety property under every scenario is the same: issued one-time
indexes stay globally unique, and no one-time token is ever accepted twice
on-chain.
"""

import pytest

from repro.chain import Blockchain
from repro.consensus.counter import CounterTimeout
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import OwnerWallet
from repro.core.acr import RuleSet
from repro.core.replication import NoReplicaAvailable, ReplicatedTokenService
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair


@pytest.fixture
def chain():
    return Blockchain()


@pytest.fixture
def rts(chain):
    return ReplicatedTokenService(
        replica_count=3,
        keypair=KeyPair.from_seed("fault-ts"),
        rules=RuleSet(),
        clock=chain.clock,
        seed=41,
    )


@pytest.fixture
def protected(chain, rts):
    owner = chain.create_account("owner", seed="fault-owner")
    receipt = OwnerWallet(owner, rts.replicas[0]).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=4096
    )
    assert receipt.success
    return receipt.return_value


@pytest.fixture
def alice(chain):
    return chain.create_account("alice", seed="fault-alice")


def _one_time_request(protected, alice):
    return TokenRequest.method_token(
        protected.this, alice.address, "submit", one_time=True
    )


def _issue_batch(rts, request, count):
    return [rts.issue_token(request) for _ in range(count)]


# --- leader crash mid-batch --------------------------------------------------------


def test_leader_crash_mid_batch_keeps_indexes_unique(rts, protected, alice):
    request = _one_time_request(protected, alice)
    tokens = _issue_batch(rts, request, 5)
    crashed = rts.counter_cluster.crash_leader()
    tokens += _issue_batch(rts, request, 5)
    indexes = [t.index for t in tokens]
    assert len(set(indexes)) == len(indexes)
    assert rts.issued_indexes_are_unique()
    # The crashed node recovers and catches up without disturbing uniqueness.
    rts.counter_cluster.restart(crashed)
    tokens += _issue_batch(rts, request, 3)
    indexes = [t.index for t in tokens]
    assert len(set(indexes)) == len(indexes)
    assert rts.issued_indexes_are_unique()


def test_repeated_leader_crashes(rts, protected, alice):
    request = _one_time_request(protected, alice)
    tokens = []
    crashed = None
    for _ in range(2):
        tokens += _issue_batch(rts, request, 3)
        if crashed is not None:
            rts.counter_cluster.restart(crashed)
        crashed = rts.counter_cluster.crash_leader()
    tokens += _issue_batch(rts, request, 3)
    indexes = [t.index for t in tokens]
    assert len(set(indexes)) == len(indexes)
    assert rts.issued_indexes_are_unique()


def test_tokens_issued_across_crash_all_verify_once_on_chain(
    chain, rts, protected, alice
):
    """No one-time token is accepted twice on-chain, crash or no crash."""
    request = _one_time_request(protected, alice)
    tokens = _issue_batch(rts, request, 4)
    rts.counter_cluster.crash_leader()
    tokens += _issue_batch(rts, request, 4)
    for amount, token in enumerate(tokens, start=1):
        first = alice.transact(protected, "submit", amount, token=token.to_bytes())
        assert first.success, first.error
        replay = alice.transact(protected, "submit", amount, token=token.to_bytes())
        assert not replay.success
        assert "SMACS" in replay.error
    assert chain.read(protected, "entries") == len(tokens)


# --- partitions --------------------------------------------------------------------


def test_partition_and_heal_keeps_indexes_unique(rts, protected, alice):
    request = _one_time_request(protected, alice)
    tokens = _issue_batch(rts, request, 4)

    network = rts.counter_cluster.network
    nodes = sorted(rts.counter_cluster.nodes)
    # Majority partition {0, 1} keeps committing; {2} is isolated.
    network.partition(nodes[:2], nodes[2:])
    tokens += _issue_batch(rts, request, 4)

    network.heal_partition()
    tokens += _issue_batch(rts, request, 4)

    indexes = [t.index for t in tokens]
    assert len(set(indexes)) == len(indexes)
    assert rts.issued_indexes_are_unique()


def test_minority_leader_cannot_commit_duplicates(chain, rts, protected, alice):
    """Indexes committed before an isolation are never re-issued after it:
    the isolated ex-leader's uncommitted state cannot fork the counter."""
    request = _one_time_request(protected, alice)
    before = [t.index for t in _issue_batch(rts, request, 3)]
    leader = rts.counter_cluster.elect_leader()
    network = rts.counter_cluster.network
    others = [n for n in rts.counter_cluster.nodes if n != leader.node_id]
    network.partition(others, [leader.node_id])
    after = [t.index for t in _issue_batch(rts, request, 3)]
    network.heal_partition()
    healed = [t.index for t in _issue_batch(rts, request, 3)]
    indexes = before + after + healed
    assert len(set(indexes)) == len(indexes)
    assert rts.issued_indexes_are_unique()


# --- transient counter timeouts (the failover-retry fix) ----------------------------


def test_transient_timeout_retries_on_another_replica(rts, protected, alice, monkeypatch):
    """A single transient CounterTimeout is absorbed by fail-over."""
    request = _one_time_request(protected, alice)
    victim = rts.replicas[rts._next % len(rts.replicas)]  # the next pick
    original = victim.issue_token
    calls = {"n": 0}

    def flaky(req):
        if calls["n"] == 0:
            calls["n"] += 1
            raise CounterTimeout("injected: leader election in progress")
        return original(req)

    monkeypatch.setattr(victim, "issue_token", flaky)
    token = rts.issue_token(request)
    assert token is not None
    assert rts.transient_failovers == 1
    assert rts.issued_indexes_are_unique()


def test_transient_timeout_in_submit_retries_whole_batch(rts, protected, alice, monkeypatch):
    request = _one_time_request(protected, alice)
    victim = rts.replicas[rts._next % len(rts.replicas)]
    original = victim.submit
    calls = {"n": 0}

    def flaky(requests):
        if calls["n"] == 0:
            calls["n"] += 1
            raise CounterTimeout("injected: commit deadline exceeded")
        return original(requests)

    monkeypatch.setattr(victim, "submit", flaky)
    results = rts.submit([request, request])
    assert all(result.issued for result in results)
    assert rts.transient_failovers == 1
    indexes = [result.token.index for result in results]
    assert len(set(indexes)) == len(indexes)


def test_persistent_timeout_surfaces_after_all_replicas(rts, protected, alice, monkeypatch):
    request = _one_time_request(protected, alice)
    for replica in rts.replicas:
        def always_timeout(req, _r=replica):
            raise CounterTimeout("injected: cluster has no quorum")

        monkeypatch.setattr(replica, "issue_token", always_timeout)
    with pytest.raises(CounterTimeout):
        rts.issue_token(request)
    assert rts.transient_failovers == len(rts.replicas)


def test_all_replicas_down_still_raises_no_replica(rts, protected, alice):
    for index in range(len(rts.replicas)):
        rts.take_down(index)
    with pytest.raises(NoReplicaAvailable):
        rts.issue_token(_one_time_request(protected, alice))


def test_real_no_quorum_timeout_is_transient_and_recovers(rts, protected, alice):
    """With 2 of 3 counter replicas crashed there is no quorum: issuance
    times out (as CounterTimeout, via every replica) -- and succeeds again
    once a replica returns."""
    request = _one_time_request(protected, alice)
    first = rts.issue_token(request)
    cluster = rts.counter_cluster
    nodes = sorted(cluster.nodes)
    cluster.network.take_down(nodes[0])
    cluster.network.take_down(nodes[1])
    with pytest.raises(CounterTimeout):
        rts.issue_token(request)
    cluster.network.bring_up(nodes[0])
    token = rts.issue_token(request)
    assert token.index != first.index
    assert rts.issued_indexes_are_unique()
