"""Unit tests for the one-time-token bitmap (Alg. 2), including the paper's
worked example, plus sizing helpers (§IV-C)."""

import pytest

from repro.core.bitmap import (
    OneTimeBitmap,
    bitmap_storage_bytes,
    bitmap_storage_slots,
    required_bitmap_bits,
)


def test_initial_state_matches_algorithm_2():
    bitmap = OneTimeBitmap(size=8)
    assert bitmap.start == 0
    assert bitmap.end == 7
    assert bitmap.start_ptr == 0
    assert bitmap.end_ptr == 7
    assert bitmap.bits == [0] * 8


def test_paper_worked_example_step_by_step():
    """Reproduces the running example of §IV-C exactly."""
    bitmap = OneTimeBitmap(size=8)

    # Tokens 0, 1, 4, 5 access the contract.
    for index in (0, 1, 4, 5):
        assert bitmap.mark_used(index)
    assert bitmap.bits == [1, 1, 0, 0, 1, 1, 0, 0]

    # Token 9 arrives: seek() returns 2, endPtr becomes 1, window [2, 9].
    assert bitmap.mark_used(9)
    assert bitmap.start_ptr == 2
    assert bitmap.end_ptr == 1
    assert bitmap.start == 2
    assert bitmap.end == 9

    # Token 13 arrives: window slides to [6, 13], startPtr 6, endPtr 5.
    assert bitmap.mark_used(13)
    assert bitmap.start_ptr == 6
    assert bitmap.end_ptr == 5
    assert bitmap.start == 6
    assert bitmap.end == 13


def test_double_use_rejected():
    bitmap = OneTimeBitmap(size=8)
    assert bitmap.mark_used(3)
    assert not bitmap.mark_used(3)


def test_index_below_window_is_a_miss():
    bitmap = OneTimeBitmap(size=4)
    assert bitmap.mark_used(7)  # slides window to [4, 7]
    assert not bitmap.mark_used(2)
    assert not bitmap.mark_used(3)


def test_token_miss_from_stale_bits_after_slide():
    """After the paper's example, index 8 maps to a stale 1-bit and is missed."""
    bitmap = OneTimeBitmap(size=8)
    for index in (0, 1, 4, 5, 9):
        assert bitmap.mark_used(index)
    # Index 8 was never used, but its cell is S[0] = 1 (stale from index 0).
    assert not bitmap.mark_used(8)
    # Index 6 is still in the window with a clear cell.
    assert bitmap.mark_used(6)


def test_far_future_index_resets_bitmap():
    bitmap = OneTimeBitmap(size=8)
    assert bitmap.mark_used(1)
    assert bitmap.mark_used(100)  # > end + n: reset branch
    assert bitmap.start == 100
    assert bitmap.end == 107
    assert bitmap.start_ptr == 0
    # The triggering index itself must not be reusable (paper omission fixed).
    assert not bitmap.mark_used(100)
    assert bitmap.mark_used(101)


def test_seek_with_no_free_cell_falls_back_to_reset():
    bitmap = OneTimeBitmap(size=4)
    for index in range(4):
        assert bitmap.mark_used(index)
    # Window is full of 1s; the slide branch cannot find a clear cell.
    assert bitmap.mark_used(5)
    assert bitmap.start == 5
    assert not bitmap.mark_used(5)


def test_no_index_is_ever_accepted_twice_under_mixed_workload():
    bitmap = OneTimeBitmap(size=16)
    accepted: set[int] = set()
    pattern = [0, 3, 1, 17, 18, 2, 30, 31, 16, 90, 91, 95, 90, 3, 17]
    for index in pattern:
        if bitmap.mark_used(index):
            assert index not in accepted, f"index {index} accepted twice"
            accepted.add(index)
    assert accepted  # sanity: something was accepted


def test_cell_mapping_and_is_marked():
    bitmap = OneTimeBitmap(size=8)
    bitmap.mark_used(3)
    assert bitmap.is_marked(3)
    assert not bitmap.is_marked(4)
    with pytest.raises(ValueError):
        bitmap.cell_for(100)


def test_negative_index_rejected():
    bitmap = OneTimeBitmap(size=8)
    with pytest.raises(ValueError):
        bitmap.mark_used(-1)


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        OneTimeBitmap(size=0)
    with pytest.raises(ValueError):
        OneTimeBitmap(size=4, bits=[0] * 5)


def test_snapshot_exposes_full_state_tuple():
    bitmap = OneTimeBitmap(size=8)
    bitmap.mark_used(2)
    snapshot = bitmap.snapshot()
    assert snapshot["size"] == 8
    assert snapshot["bits"][2] == 1
    assert {"start", "end", "start_ptr", "end_ptr"} <= set(snapshot)


def test_used_count_and_window():
    bitmap = OneTimeBitmap(size=8)
    for i in (0, 1, 2):
        bitmap.mark_used(i)
    assert bitmap.used_count() == 3
    assert bitmap.window() == (0, 7)


# --- sizing (§IV-C, Tab. IV) ----------------------------------------------------------


def test_required_bits_formula_matches_paper():
    # 1-hour lifetime at 35 tx/s -> 126 000 bits = 15.38 KiB (Tab. IV).
    bits = required_bitmap_bits(3600, 35)
    assert bits == 126_000
    assert bitmap_storage_bytes(bits) == pytest.approx(15_750)
    assert bitmap_storage_bytes(bits) / 1024 == pytest.approx(15.38, abs=0.01)


def test_required_bits_scales_linearly_with_rate():
    assert required_bitmap_bits(3600, 3.5) == 12_600
    assert required_bitmap_bits(3600, 0.35) == 1_260


def test_required_bits_is_at_least_one():
    assert required_bitmap_bits(1, 0.0001) == 1


def test_storage_slots_round_up_to_256_bit_words():
    assert bitmap_storage_slots(1) == 1
    assert bitmap_storage_slots(256) == 1
    assert bitmap_storage_slots(257) == 2
    assert bitmap_storage_slots(126_000) == 493
