"""The LRU signature-verification cache (repro.crypto.sigcache)."""

import pytest

from repro.core import TokenType
from repro.crypto.ecdsa import Signature
from repro.crypto.keccak import keccak256
from repro.crypto.keys import KeyPair, recover_address
from repro.crypto.sigcache import DEFAULT_SIGNATURE_CACHE, SignatureCache

KEYPAIR = KeyPair.from_seed("sigcache-key")
DIGEST = keccak256(b"sigcache-digest")


def test_signature_for_matches_fresh_signing():
    cache = SignatureCache()
    cached = cache.signature_for(KEYPAIR, DIGEST)
    assert cached == KEYPAIR.sign(DIGEST)  # RFC-6979 determinism
    assert cache.signature_for(KEYPAIR, DIGEST) == cached
    assert cache.hits == 1 and cache.misses == 1


def test_signature_memo_is_keyed_by_signer():
    cache = SignatureCache()
    other = KeyPair.from_seed("sigcache-other")
    assert cache.signature_for(KEYPAIR, DIGEST) != cache.signature_for(other, DIGEST)


def test_recover_matches_direct_recovery_and_caches():
    cache = SignatureCache()
    signature = KEYPAIR.sign(DIGEST)
    expected = recover_address(DIGEST, signature)
    assert cache.recover(DIGEST, signature) == expected == KEYPAIR.address
    assert cache.recover(DIGEST, signature) == expected
    assert cache.hits == 1


def test_unrecoverable_signatures_return_none_and_are_cached():
    cache = SignatureCache()
    # A syntactically valid signature that does not recover for this digest
    # on the flipped parity; brute-force one that actually fails to recover.
    bogus = Signature(r=2**200, s=2**200, v=0)
    first = cache.recover(DIGEST, bogus)
    second = cache.recover(DIGEST, bogus)
    assert first == second
    assert cache.hits == 1  # the failure itself was memoised


def test_digest_for_matches_keccak():
    cache = SignatureCache()
    assert cache.digest_for(b"datagram") == keccak256(b"datagram")
    assert cache.digest_for(b"datagram") == keccak256(b"datagram")
    assert cache.hits == 1


def test_memoize_calls_factory_once():
    cache = SignatureCache()
    calls = []

    def factory():
        calls.append(1)
        return "token"

    assert cache.memoize(("k",), factory) == "token"
    assert cache.memoize(("k",), factory) == "token"
    assert calls == [1]


def test_lru_eviction_bounds_each_table():
    cache = SignatureCache(maxsize=4)
    for i in range(10):
        cache.digest_for(bytes([i]))
    assert len(cache) == 4
    # The oldest entry was evicted: recomputing it is a miss again.
    misses_before = cache.misses
    cache.digest_for(bytes([0]))
    assert cache.misses == misses_before + 1


def test_stats_and_clear():
    cache = SignatureCache()
    cache.digest_for(b"x")
    cache.digest_for(b"x")
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["digest_entries"] == 1
    cache.clear()
    assert len(cache) == 0 and cache.hit_rate == 0.0


def test_invalid_maxsize_rejected():
    with pytest.raises(ValueError):
        SignatureCache(maxsize=0)


def test_default_cache_is_shared_with_the_execution_engine():
    from repro.chain.evm import ExecutionEngine

    assert ExecutionEngine().signature_cache is DEFAULT_SIGNATURE_CACHE
    private = SignatureCache()
    assert ExecutionEngine(signature_cache=private).signature_cache is private


def test_verifier_path_uses_the_engine_cache(chain, alice, alice_wallet, recorder):
    """A token verified on-chain warms the engine's ecrecover memo."""
    engine_cache = chain.evm.signature_cache
    lookups_before = engine_cache.hits + engine_cache.misses
    token = alice_wallet.request_token(recorder, TokenType.METHOD, "submit")
    first = alice.transact(recorder, "submit", 3, token=token.to_bytes())
    assert first.success, first.error
    assert engine_cache.hits + engine_cache.misses > lookups_before
    hits_before = engine_cache.hits
    second = alice.transact(recorder, "submit", 4, token=token.to_bytes())
    assert second.success, second.error
    assert engine_cache.hits > hits_before  # same signature: recovery memoised


# --- batched recovery ---------------------------------------------------------


def test_recover_batch_matches_singles_and_caches():
    cache = SignatureCache()
    digests = [keccak256(b"batch-%d" % i) for i in range(6)]
    pairs = [(d, KEYPAIR.sign(d)) for d in digests]
    results = cache.recover_batch(pairs)
    assert results == [KEYPAIR.address] * len(pairs)
    # Everything landed in the cache: a second batch is pure hits.
    hits_before = cache.hits
    assert cache.recover_batch(pairs) == results
    assert cache.hits == hits_before + len(pairs)
    # And the single-call path sees the same entries.
    assert cache.recover(*pairs[0]) == KEYPAIR.address


def test_recover_batch_mixes_hits_misses_and_failures():
    cache = SignatureCache()
    good = KEYPAIR.sign(DIGEST)
    cache.recover(DIGEST, good)  # pre-warm one entry
    other_digest = keccak256(b"other")
    bad = Signature(12345, 67890, 1)
    results = cache.recover_batch(
        [(DIGEST, good), (other_digest, KEYPAIR.sign(other_digest)), (DIGEST, bad)]
    )
    assert results[0] == KEYPAIR.address
    assert results[1] == KEYPAIR.address
    assert results[2] != KEYPAIR.address  # forged: None or a different signer
    # Failures are cached too: repeating the bad entry is a hit, not curve work.
    hits_before = cache.hits
    again = cache.recover_batch([(DIGEST, bad)])
    assert again == [results[2]]
    assert cache.hits == hits_before + 1


def test_recover_batch_deduplicates_replayed_pairs():
    cache = SignatureCache()
    signature = KEYPAIR.sign(DIGEST)
    results = cache.recover_batch([(DIGEST, signature)] * 5)
    assert results == [KEYPAIR.address] * 5
    # Same counters as five single recover() calls: one miss, then hits.
    assert (cache.misses, cache.hits) == (1, 4)
    assert cache.recover(DIGEST, signature) == KEYPAIR.address


def test_recover_batch_empty():
    assert SignatureCache().recover_batch([]) == []
