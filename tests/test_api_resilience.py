"""Resilience behaviour at the wire: deadlines, overload, breakers, budgets.

``test_resilience.py`` proves the primitives in isolation; this file proves
them *wired through the seams*: the gateway sheds expired deadlines before
issuance and overload before dispatch (with ``retry_after_s`` hints the
client honors), the mempool sheds dead work before signature recovery, the
TCP transport's per-endpoint breakers eject dead servers and re-close after
probing, and a server restart on the same port is invisible to pooled
clients (stale sockets redial; only requests that received zero response
bytes are replayed).
"""

from __future__ import annotations

import pytest

from repro.api import (
    AdmissionController,
    Backoff,
    ErrorCode,
    GatewayClient,
    RetryBudget,
    ServiceGateway,
    SmacsError,
    build_service,
    codec,
    connect,
    serve,
)
from repro.api.transport import endpoint_url
from repro.chain import Blockchain
from repro.chain.transaction import Transaction
from repro.core.acr import RuleSet
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair
from repro.pipeline.mempool import Mempool
from repro.resilience import BREAKER_CLOSED

ROUTE = "https://ts.resilience.example"


def _gateway(**gateway_kwargs) -> ServiceGateway:
    service = build_service(
        "serial", keypair=KeyPair.from_seed("resilience-ts"), rules=RuleSet()
    )
    gateway = ServiceGateway(**gateway_kwargs)
    gateway.register(ROUTE, service)
    return gateway


def _request() -> TokenRequest:
    return TokenRequest.method_token(
        b"\xaa" * 20, b"\xbb" * 20, "submit", one_time=True
    )


def _submit_body() -> dict:
    return {"requests": [codec.encode_token_request(_request())]}


class _ScriptedTransport:
    """Answers ``send`` from a fixed script of envelopes and exceptions."""

    def __init__(self, script):
        self.script = list(script)
        self.sent: list[bytes] = []

    def send(self, raw: bytes) -> bytes:
        self.sent.append(raw)
        item = self.script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item

    def close(self) -> None:
        pass

    def describe(self):
        return {"kind": "scripted"}


# --- the deadline envelope field ----------------------------------------------------


@pytest.mark.parametrize("lane", sorted(codec.CODECS))
def test_deadline_field_round_trips_in_both_codec_lanes(lane):
    stamped = codec.encode_request_envelope(
        "submit", ROUTE, _submit_body(), codec=lane, deadline=1234.5
    )
    op, route, _body, _trace, deadline = codec.decode_request_full(stamped)
    assert (op, route, deadline) == ("submit", ROUTE, 1234.5)
    # A deadline-less envelope carries no trace of the field at all: legacy
    # peers and deadline-bearing peers produce interchangeable bytes.
    bare = codec.encode_request_envelope("submit", ROUTE, _submit_body(), codec=lane)
    *_, absent = codec.decode_request_full(bare)
    assert absent is None
    assert b"deadline" not in bare


def test_gateway_sheds_expired_deadlines_before_any_dispatch():
    gateway = _gateway(now=lambda: 1000.0)
    raw = codec.encode_request_envelope(
        "submit", ROUTE, _submit_body(), deadline=999.0
    )
    with pytest.raises(SmacsError) as failure:
        codec.decode_response_envelope(gateway.handle(raw))
    assert failure.value.code is ErrorCode.DEADLINE_EXCEEDED
    assert not failure.value.retryable  # the budget is gone; a retry stays dead
    assert "gateway" in str(failure.value)
    assert gateway.shed["deadline"] == 1
    # An unexpired deadline is invisible.
    live = codec.encode_request_envelope(
        "submit", ROUTE, _submit_body(), deadline=1001.0
    )
    payload = codec.decode_response_envelope(gateway.handle(live))
    results = [codec.decode_issuance_result(item) for item in payload["results"]]
    assert results[0].issued


def test_gateway_rechecks_the_deadline_at_the_issuance_stage():
    # The clock advances between the envelope-decode check and the
    # pre-issuance check: request-body decode ate the remaining budget.
    clock = {"t": 1000.0}

    def ticking_now():
        clock["t"] += 0.4
        return clock["t"]

    gateway = _gateway(now=ticking_now)
    # Alive at the gateway check (t=1000.4), dead at the issuance re-check
    # (t=1000.8): exactly the window the second checkpoint exists for.
    raw = codec.encode_request_envelope(
        "submit", ROUTE, _submit_body(), deadline=1000.6
    )
    with pytest.raises(SmacsError) as failure:
        codec.decode_response_envelope(gateway.handle(raw))
    assert failure.value.code is ErrorCode.DEADLINE_EXCEEDED
    assert "issuance" in str(failure.value)
    assert gateway.shed["deadline"] == 1


def test_mempool_sheds_expired_deadlines_before_signature_recovery():
    chain = Blockchain(auto_mine=False)
    mempool = Mempool(chain)
    mempool.wall_clock = lambda: 1000.0
    sender = chain.create_account(seed="deadline-sender")
    sink = chain.create_account(seed="deadline-sink")
    tx = Transaction(
        sender=sender.address, to=sink.address, nonce=0, value=0
    ).sign_with(sender.keypair)
    decision = mempool.admit(tx, deadline=999.0)
    assert not decision.admitted
    assert mempool.rejected == {"deadline exceeded before admission": 1}
    # The same transaction with budget left admits cleanly (the shed never
    # consumed its nonce, reserved an index or touched the pool).
    assert mempool.admit(tx, deadline=1001.0).admitted


# --- adaptive admission control at the gateway edge ---------------------------------


def test_gateway_sheds_overload_with_a_retry_after_hint():
    admission = AdmissionController(target_delay_s=0.01, initial_service_s=1.0)
    gateway = _gateway(admission=admission)
    client = gateway.client_for(ROUTE)
    assert client.submit(_request())[0].issued  # uncontended: invisible
    assert admission.admit() is None  # hold a slot: ~1s estimated delay
    with pytest.raises(SmacsError) as failure:
        client.submit(_request())
    assert failure.value.code is ErrorCode.OVERLOADED
    assert failure.value.retryable
    assert failure.value.retry_after_s is not None
    assert failure.value.retry_after_s > 0
    assert gateway.shed["overloaded"] == 1
    # The control plane is never shed: an overloaded gateway still answers
    # health (and reports the shedding it is doing).
    health = client.health()
    assert health["status"] == "ok"
    assert health["admission"]["shed"] == 1
    admission.observe(None)  # the held slot drains: traffic flows again
    assert client.submit(_request())[0].issued


def test_failed_dispatches_release_their_admission_slot():
    admission = AdmissionController(target_delay_s=10.0, initial_service_s=0.001)
    gateway = _gateway(admission=admission)
    for raw, expected in [
        (
            codec.encode_request_envelope("submit", ROUTE, {"requests": "nope"}),
            ErrorCode.MALFORMED_REQUEST,
        ),
        (
            codec.encode_request_envelope("submit", "no-such-route", _submit_body()),
            ErrorCode.UNKNOWN_ROUTE,
        ),
    ]:
        with pytest.raises(SmacsError) as failure:
            codec.decode_response_envelope(gateway.handle(raw))
        assert failure.value.code is expected
    stats = admission.stats()
    assert stats["admitted"] == 2
    assert stats["inflight"] == 0  # both slots released despite the failures
    assert stats["service_ewma_s"] == 0.001  # failures never teach the EWMA


def test_shed_check_charges_admission_once_per_request():
    admission = AdmissionController(target_delay_s=0.01, initial_service_s=1.0)
    gateway = _gateway(admission=admission)
    raw = codec.encode_request_envelope("submit", ROUTE, _submit_body())
    assert gateway.shed_check(raw) is None  # admitted: the slot is held
    shed = gateway.shed_check(raw)  # a second arrival while the first queues
    assert shed is not None
    with pytest.raises(SmacsError) as failure:
        codec.decode_response_envelope(shed)
    assert failure.value.code is ErrorCode.OVERLOADED
    # Dispatching the admitted frame must not charge the edge twice.
    payload = codec.decode_response_envelope(gateway.handle(raw, preadmitted=True))
    results = [codec.decode_issuance_result(item) for item in payload["results"]]
    assert results[0].issued
    stats = admission.stats()
    assert stats["admitted"] == 1
    assert stats["shed"] == 1
    assert stats["inflight"] == 0
    # Undecodable frames pass through: MALFORMED_REQUEST keeps coming from
    # handle(), and the garbage never holds an admission slot.
    assert gateway.shed_check(b"\x00garbage") is None
    assert admission.stats()["inflight"] == 0


def test_dispatch_pool_serves_and_sheds_at_arrival_pace():
    admission = AdmissionController(target_delay_s=0.01, initial_service_s=1.0)
    gateway = _gateway(admission=admission)
    with serve(gateway, dispatch_workers=1) as server:
        client = connect(server.url)
        try:
            assert client.submit(_request())[0].issued
            stats = server.stats()
            assert stats["dispatch_workers"] == 1
            assert stats["frames_shed"] == 0
            assert admission.admit() is None  # hold a slot
            with pytest.raises(SmacsError) as failure:
                client.submit(_request())
            assert failure.value.code is ErrorCode.OVERLOADED
            assert server.stats()["frames_shed"] == 1  # shed on the read loop
            admission.observe(None)
            assert client.submit(_request())[0].issued
        finally:
            client.close()


# --- retry_after hints end to end (S1) ----------------------------------------------


def test_edge_rate_limit_carries_a_retry_after_hint():
    fake = {"t": 0.0}
    with serve(_gateway(), rate_limit=(10, 2), now=lambda: fake["t"]) as server:
        client = connect(server.url)  # the route-discovery probe spends 1 token
        try:
            assert client.submit(_request())[0].issued  # spends the 2nd token
            with pytest.raises(SmacsError) as failure:
                client.submit(_request())
            assert failure.value.code is ErrorCode.RATE_LIMITED
            assert failure.value.retry_after_s is not None
            # Rate 10/s, one token needed: the refill horizon is ~0.1s.
            assert failure.value.retry_after_s == pytest.approx(0.1, rel=0.01)
        finally:
            client.close()


def test_client_sleeps_the_server_hint_instead_of_guessing():
    ok = codec.encode_response_envelope(
        {"version": codec.WIRE_VERSION, "routes": [ROUTE]}
    )
    transport = _ScriptedTransport(
        [SmacsError("busy", ErrorCode.OVERLOADED, retry_after_s=0.123), ok]
    )
    slept: list[float] = []
    client = GatewayClient(
        transport,
        ROUTE,
        backoff=Backoff(retries=2, cap=1.0, sleep=slept.append),
        retry_codes=frozenset({ErrorCode.OVERLOADED}),
    )
    assert client.describe()["routes"] == [ROUTE]
    assert slept == [0.123]  # the hint, not a jitter draw
    assert client.retry_hints_honored == 1
    assert client.retries_performed == 1


def test_client_caps_the_server_hint_at_the_backoff_cap():
    ok = codec.encode_response_envelope(
        {"version": codec.WIRE_VERSION, "routes": [ROUTE]}
    )
    transport = _ScriptedTransport(
        [SmacsError("busy", ErrorCode.OVERLOADED, retry_after_s=60.0), ok]
    )
    slept: list[float] = []
    client = GatewayClient(
        transport,
        ROUTE,
        backoff=Backoff(retries=2, cap=0.25, sleep=slept.append),
        retry_codes=frozenset({ErrorCode.OVERLOADED}),
    )
    client.describe()
    assert slept == [0.25]  # a server cannot park a client for a minute


# --- client deadlines and retry budgets ---------------------------------------------


def test_client_stamps_envelopes_and_stops_retrying_at_the_deadline():
    clock = {"t": 100.0}
    ok = codec.encode_response_envelope(
        {"version": codec.WIRE_VERSION, "routes": [ROUTE]}
    )
    transport = _ScriptedTransport([ok])
    client = GatewayClient(transport, ROUTE, deadline_s=5.0, now=lambda: clock["t"])
    client.describe()
    *_, deadline = codec.decode_request_full(transport.sent[0])
    assert deadline == pytest.approx(105.0)  # the absolute deadline, stamped

    # A retry loop whose pause outlives the budget stops locally: the dead
    # retry is never sent and the caller sees DEADLINE_EXCEEDED.
    failing = _ScriptedTransport([SmacsError("down", ErrorCode.UNAVAILABLE)] * 4)
    client = GatewayClient(
        failing,
        ROUTE,
        deadline_s=5.0,
        now=lambda: clock["t"],
        backoff=Backoff(retries=3, sleep=lambda _delay: clock.__setitem__("t", 200.0)),
    )
    with pytest.raises(SmacsError) as failure:
        client.describe()
    assert failure.value.code is ErrorCode.DEADLINE_EXCEEDED
    assert len(failing.sent) == 1
    with pytest.raises(ValueError):
        GatewayClient(failing, ROUTE, deadline_s=0.0)


def test_retry_budget_caps_retry_amplification():
    down = [SmacsError("down", ErrorCode.UNAVAILABLE) for _ in range(4)]
    transport = _ScriptedTransport(down)
    budget = RetryBudget(initial_balance=1.0)
    client = GatewayClient(
        transport,
        ROUTE,
        backoff=Backoff(retries=3, sleep=lambda _delay: None),
        retry_budget=budget,
    )
    with pytest.raises(SmacsError) as failure:
        client.describe()
    assert failure.value.code is ErrorCode.UNAVAILABLE
    assert len(transport.sent) == 2  # one retry afforded, then the denial
    assert client.retries_denied == 1
    assert budget.stats()["granted"] == 1
    assert budget.stats()["denied"] == 1


def test_successes_replenish_the_shared_budget():
    ok = codec.encode_response_envelope(
        {"version": codec.WIRE_VERSION, "routes": [ROUTE]}
    )
    transport = _ScriptedTransport([ok, ok, ok])
    budget = RetryBudget(deposit_per_success=0.5, initial_balance=0.0)
    client = GatewayClient(transport, ROUTE, retry_budget=budget)
    for _ in range(3):
        client.describe()
    assert budget.balance == pytest.approx(1.5)  # three successes at 0.5 each


# --- circuit breakers on the TCP pool (incl. the S4 restart regression) -------------


def test_stale_pooled_sockets_redial_transparently_across_a_restart():
    with serve(_gateway()) as server:
        port = server.port
        client = connect(server.url, breaker_reset_timeout=0.05)
        assert client.submit(_request())[0].issued  # warms the pool
    # The server died and a replacement binds the same port.  The pooled
    # socket is now stale: the next request gets zero response bytes on it,
    # which is the one case that is provably safe to replay on a fresh dial.
    with serve(_gateway(), ("127.0.0.1", port)):
        try:
            assert client.submit(_request())[0].issued
            wire = client.transport.describe()
            assert wire["reconnects"] >= 1  # the stale checkout was redialed
            assert wire["breakers"][0]["state"] == BREAKER_CLOSED
        finally:
            client.close()


def test_breakers_fail_fast_and_reclose_after_probing():
    clock = {"t": 0.0}
    with serve(_gateway()) as server:
        port = server.port
        client = connect(
            server.url,
            breaker_failure_threshold=2,
            breaker_reset_timeout=30.0,
            connect_timeout=0.5,
            request_timeout=2.0,
            now=lambda: clock["t"],
        )
        assert client.submit(_request())[0].issued
    # Hard outage: consecutive dial failures trip the breaker...
    for _ in range(2):
        with pytest.raises(SmacsError) as failure:
            client.submit(_request())
        assert failure.value.code is ErrorCode.UNAVAILABLE
        assert failure.value.retry_after_s is None  # real dials, really failing
    # ...after which the transport fails fast: no dial, no timeout wait,
    # just UNAVAILABLE with the next-probe horizon.
    with pytest.raises(SmacsError) as failure:
        client.submit(_request())
    assert failure.value.code is ErrorCode.UNAVAILABLE
    assert failure.value.retry_after_s == pytest.approx(30.0)
    assert client.transport.describe()["breaker_skips"] == 1
    # The server comes back on the same port.  A probe sweep re-closes the
    # breaker immediately -- no waiting out the reset timeout, no user
    # traffic sacrificed to half-open discovery.
    with serve(_gateway(), ("127.0.0.1", port)):
        try:
            probed = client.transport.probe_endpoints()
            assert probed == {endpoint_url("127.0.0.1", port): True}
            assert client.transport.breakers[0].state == BREAKER_CLOSED
            assert client.submit(_request())[0].issued
        finally:
            client.close()


def test_breakers_can_be_disabled_for_the_pre_resilience_behaviour():
    with serve(_gateway()) as server:
        client = connect(server.url, breaker_failure_threshold=0)
        try:
            assert client.transport.breakers is None
            assert client.submit(_request())[0].issued
            assert client.transport.describe()["breakers"] is None
        finally:
            client.close()
