"""Unit tests for the simulated network and the Raft log."""

import pytest

from repro.consensus.log import LogEntry, RaftLog
from repro.consensus.network import SimulatedNetwork


# --- simulated network -------------------------------------------------------------


def test_messages_are_delivered_in_virtual_time():
    net = SimulatedNetwork(seed=1)
    received = []
    net.register("a", lambda sender, msg: None)
    net.register("b", lambda sender, msg: received.append((sender, msg)))
    net.send("a", "b", "hello")
    assert not received
    net.run_for(1.0)
    assert received == [("a", "hello")]
    assert net.delivered_messages == 1


def test_broadcast_reaches_everyone_but_sender():
    net = SimulatedNetwork(seed=1)
    inboxes = {name: [] for name in "abc"}
    for name in "abc":
        net.register(name, lambda s, m, name=name: inboxes[name].append(m))
    net.broadcast("a", "ping")
    net.run_for(1.0)
    assert inboxes["a"] == []
    assert inboxes["b"] == ["ping"]
    assert inboxes["c"] == ["ping"]


def test_down_nodes_do_not_receive():
    net = SimulatedNetwork(seed=1)
    received = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: received.append(m))
    net.take_down("b")
    net.send("a", "b", "x")
    net.run_for(1.0)
    assert not received
    assert net.dropped_messages == 1
    net.bring_up("b")
    net.send("a", "b", "y")
    net.run_for(1.0)
    assert received == ["y"]


def test_partition_blocks_cross_group_traffic():
    net = SimulatedNetwork(seed=1)
    received = {name: [] for name in "abc"}
    for name in "abc":
        net.register(name, lambda s, m, name=name: received[name].append(m))
    net.partition({"a", "b"}, {"c"})
    net.send("a", "b", "in-group")
    net.send("a", "c", "cross-group")
    net.run_for(1.0)
    assert received["b"] == ["in-group"]
    assert received["c"] == []
    net.heal_partition()
    net.send("a", "c", "after-heal")
    net.run_for(1.0)
    assert received["c"] == ["after-heal"]


def test_lossy_network_drops_some_messages():
    net = SimulatedNetwork(seed=42, drop_rate=0.5)
    count = [0]
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: count.__setitem__(0, count[0] + 1))
    for _ in range(100):
        net.send("a", "b", "m")
    net.run_for(5.0)
    assert 10 < count[0] < 90


def test_scheduled_timers_fire_and_can_be_cancelled():
    net = SimulatedNetwork(seed=1)
    fired = []
    keep = net.schedule(0.5, lambda: fired.append("keep"))
    cancel = net.schedule(0.5, lambda: fired.append("cancel"))
    cancel.cancel()
    assert keep.active and not cancel.active
    net.run_for(1.0)
    assert fired == ["keep"]


def test_run_until_times_out_when_condition_never_holds():
    net = SimulatedNetwork(seed=1)
    net.register("a", lambda s, m: None)
    assert net.run_until(lambda: False, timeout=0.1) is False


def test_determinism_same_seed_same_schedule():
    def run(seed):
        net = SimulatedNetwork(seed=seed)
        deliveries = []
        net.register("a", lambda s, m: None)
        net.register("b", lambda s, m: deliveries.append(net.now))
        for _ in range(10):
            net.send("a", "b", "m")
        net.run_for(1.0)
        return deliveries

    assert run(7) == run(7)
    assert run(7) != run(8)


# --- raft log ------------------------------------------------------------------------------


def test_log_append_and_terms():
    log = RaftLog()
    assert log.last_index == 0 and log.last_term == 0
    log.append(LogEntry(1, "a"))
    log.append(LogEntry(2, "b"))
    assert log.last_index == 2
    assert log.term_at(1) == 1
    assert log.term_at(2) == 2
    assert log.term_at(0) == 0
    assert log.entry_at(2).command == "b"


def test_log_index_bounds():
    log = RaftLog()
    with pytest.raises(IndexError):
        log.term_at(1)
    with pytest.raises(IndexError):
        log.entry_at(1)


def test_log_matches_prefix():
    log = RaftLog()
    log.append(LogEntry(1, "a"))
    assert log.matches(0, 0)
    assert log.matches(1, 1)
    assert not log.matches(1, 2)
    assert not log.matches(2, 1)


def test_log_merge_appends_and_truncates_conflicts():
    log = RaftLog()
    log.append(LogEntry(1, "a"))
    log.append(LogEntry(1, "b"))
    log.append(LogEntry(1, "c"))
    # Leader says entry 2 onwards should be term-2 entries.
    log.merge(1, [LogEntry(2, "B"), LogEntry(2, "C")])
    assert len(log) == 3
    assert log.entry_at(2) == LogEntry(2, "B")
    assert log.entry_at(3) == LogEntry(2, "C")
    # Merging an already-present suffix is idempotent.
    log.merge(1, [LogEntry(2, "B")])
    assert len(log) == 3


def test_up_to_date_comparison():
    log = RaftLog()
    log.append(LogEntry(2, "x"))
    assert log.up_to_date_with(3, 1)       # higher term wins
    assert not log.up_to_date_with(1, 99)  # lower term loses
    assert log.up_to_date_with(2, 1)       # same term, same length
    assert not log.up_to_date_with(2, 0)   # same term, shorter log
    assert log.entries_from(1) == [LogEntry(2, "x")]
