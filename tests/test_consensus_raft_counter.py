"""Tests for Raft consensus and the replicated counter primitive (§VII-B)."""

import pytest

from repro.consensus.counter import CounterCluster, ReplicatedCounter
from repro.consensus.network import SimulatedNetwork
from repro.consensus.raft import Role


@pytest.fixture
def cluster():
    return CounterCluster(size=3, seed=5)


def committed_agreement(cluster):
    values = set(cluster.committed_values().values())
    return len(values) == 1


# --- leader election -----------------------------------------------------------------


def test_a_leader_is_elected(cluster):
    leader = cluster.elect_leader()
    assert leader.role is Role.LEADER
    followers = [n for n in cluster.nodes.values() if n is not leader]
    cluster.network.run_for(1.0)
    assert all(n.role is Role.FOLLOWER for n in followers)
    assert all(n.leader_id == leader.node_id for n in followers)


def test_single_node_cluster_elects_itself():
    single = CounterCluster(size=1, seed=1)
    leader = single.elect_leader()
    assert leader.role is Role.LEADER
    assert single.increment() == 0


def test_new_leader_after_crash(cluster):
    old_leader_id = cluster.crash_leader()
    new_leader = cluster.elect_leader()
    assert new_leader.node_id != old_leader_id
    assert new_leader.current_term > 1


def test_no_leader_in_minority_partition():
    cluster = CounterCluster(size=3, seed=9)
    first = cluster.elect_leader()
    # Isolate the leader alone; the two-node majority side elects a new one.
    others = [n for n in cluster.nodes if n != first.node_id]
    cluster.network.partition({first.node_id}, set(others))
    cluster.network.run_for(2.0)
    majority_leaders = [
        cluster.nodes[n] for n in others if cluster.nodes[n].role is Role.LEADER
    ]
    assert len(majority_leaders) == 1
    assert majority_leaders[0].current_term > first.current_term


# --- log replication and the counter ----------------------------------------------------------


def test_counter_increments_are_sequential(cluster):
    values = [cluster.increment() for _ in range(10)]
    assert values == list(range(10))
    cluster.network.run_for(1.0)
    assert committed_agreement(cluster)


def test_counter_progress_across_leader_crash(cluster):
    first = [cluster.increment() for _ in range(3)]
    cluster.crash_leader()
    second = [cluster.increment() for _ in range(3)]
    assert first + second == list(range(6))


def test_crashed_replica_catches_up_after_restart(cluster):
    for _ in range(3):
        cluster.increment()
    downed = cluster.crash_leader()
    for _ in range(3):
        cluster.increment()
    cluster.restart(downed)
    cluster.network.run_for(3.0)
    assert cluster.machines[downed].value == 6
    assert committed_agreement(cluster)


def test_client_request_rejected_on_followers(cluster):
    leader = cluster.elect_leader()
    follower = next(n for n in cluster.nodes.values() if n is not leader)
    assert follower.client_request("increment") is None


def test_replicas_apply_identical_command_counts(cluster):
    for _ in range(5):
        cluster.increment()
    cluster.network.run_for(2.0)
    counts = {m.applied_commands for m in cluster.machines.values()}
    assert counts == {5}


def test_indexes_remain_unique_across_many_failovers():
    cluster = CounterCluster(size=5, seed=11)
    issued = []
    for round_number in range(3):
        issued.extend(cluster.increment() for _ in range(4))
        downed = cluster.crash_leader()
        issued.extend(cluster.increment() for _ in range(2))
        cluster.restart(downed)
    assert len(issued) == len(set(issued)), "replicated counter repeated an index"
    assert issued == sorted(issued)


# --- ReplicatedCounter facade --------------------------------------------------------------------


def test_replicated_counter_interface():
    counter = ReplicatedCounter(size=3, seed=13)
    assert [counter.next_index() for _ in range(4)] == [0, 1, 2, 3]
    assert counter.value == 4


def test_replicated_counter_restore_catches_up():
    counter = ReplicatedCounter(size=3, seed=17)
    counter.restore(3)
    assert counter.value == 3
    assert counter.next_index() == 3


def test_cluster_validates_size_and_shared_network():
    with pytest.raises(ValueError):
        CounterCluster(size=0)
    shared = SimulatedNetwork(seed=3)
    cluster = CounterCluster(size=3, network=shared)
    assert cluster.network is shared
    assert cluster.increment() == 0
