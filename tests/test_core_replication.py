"""Tests for replicated Token Services and fail-over (§VII-B availability)."""

import pytest

from repro.core import ClientWallet, TokenType
from repro.core.acr import WhitelistRule
from repro.core.replication import NoReplicaAvailable, ReplicatedTokenService
from repro.core.token_request import TokenRequest
from repro.contracts.protected_target import ProtectedRecorder
from repro.crypto.keys import KeyPair


@pytest.fixture
def replicated_ts(chain):
    return ReplicatedTokenService(
        replica_count=3,
        keypair=KeyPair.from_seed("replicated-ts"),
        clock=chain.clock,
        seed=23,
    )


@pytest.fixture
def protected(chain, owner, replicated_ts):
    receipt = owner.deploy(
        ProtectedRecorder,
        ts_address=replicated_ts.address,
        one_time_bitmap_bits=1024,
    )
    return receipt.return_value


def test_all_replicas_share_the_signing_identity(replicated_ts):
    addresses = {replica.address for replica in replicated_ts.replicas}
    assert addresses == {replicated_ts.address}


def test_round_robin_spreads_requests(replicated_ts, alice, protected):
    request = TokenRequest.method_token(protected.this, alice.address, "submit")
    for _ in range(6):
        replicated_ts.issue_token(request)
    issued = [replica.issued_count for replica in replicated_ts.replicas]
    assert sum(issued) == 6
    assert all(count >= 1 for count in issued)


def test_tokens_from_any_replica_verify_on_chain(chain, alice, replicated_ts, protected):
    wallet = ClientWallet(alice, {protected.this: replicated_ts})
    for i in range(3):
        receipt = wallet.call_with_token(protected, "submit", amount=i + 1,
                                         token_type=TokenType.METHOD)
        assert receipt.success
    assert chain.read(protected, "entries") == 3


def test_failover_keeps_service_available(chain, alice, replicated_ts, protected):
    request = TokenRequest.method_token(protected.this, alice.address, "submit")
    replicated_ts.take_down(0)
    replicated_ts.take_down(1)
    token = replicated_ts.issue_token(request)
    assert token is not None
    assert replicated_ts.available_replicas() == [2]
    replicated_ts.bring_up(0)
    assert 0 in replicated_ts.available_replicas()


def test_all_replicas_down_raises(replicated_ts, alice, protected):
    for index in range(3):
        replicated_ts.take_down(index)
    with pytest.raises(NoReplicaAvailable):
        replicated_ts.issue_token(
            TokenRequest.method_token(protected.this, alice.address, "submit")
        )
    with pytest.raises(IndexError):
        replicated_ts.take_down(9)


def test_one_time_indexes_unique_across_replicas(chain, alice, replicated_ts, protected):
    """The Raft-replicated counter guarantees globally unique indexes."""
    request = TokenRequest.method_token(protected.this, alice.address, "submit",
                                        one_time=True)
    indexes = [replicated_ts.issue_token(request).index for _ in range(9)]
    assert indexes == list(range(9))
    assert replicated_ts.issued_indexes_are_unique()


def test_one_time_tokens_from_different_replicas_consumed_once_on_chain(
    chain, alice, replicated_ts, protected
):
    wallet = ClientWallet(alice, {protected.this: replicated_ts})
    token = wallet.request_token(protected, TokenType.METHOD, "submit", one_time=True)
    assert alice.transact(protected, "submit", 5, token=token.to_bytes()).success
    assert not alice.transact(protected, "submit", 5, token=token.to_bytes()).success


def test_shared_rule_updates_apply_to_every_replica(chain, alice, eve, replicated_ts, protected):
    replicated_ts.update_rules(lambda rules: rules.add_rule(WhitelistRule([alice.address])))
    ok = replicated_ts.submit(
        TokenRequest.method_token(protected.this, alice.address, "submit")
    )
    denied = replicated_ts.submit(
        TokenRequest.method_token(protected.this, eve.address, "submit")
    )
    assert ok[0].issued
    assert not denied[0].issued


def test_unreplicated_counter_ablation_produces_duplicate_indexes(chain, alice, protected):
    """Without the replicated counter, independent replicas repeat indexes --
    the failure mode §VII-B warns about."""
    naive = ReplicatedTokenService(
        replica_count=2,
        keypair=KeyPair.from_seed("naive"),
        clock=chain.clock,
        replicate_counter=False,
    )
    request = TokenRequest.method_token(protected.this, alice.address, "submit",
                                        one_time=True)
    indexes = [naive.issue_token(request).index for _ in range(4)]
    assert len(set(indexes)) < len(indexes)


def test_replica_count_validation(chain):
    with pytest.raises(ValueError):
        ReplicatedTokenService(replica_count=0, clock=chain.clock)


def test_address_is_normalized_across_issuers(chain, replicated_ts):
    """Regression: the replicated front end used to annotate ``address`` as
    raw ``bytes`` while every other issuer returns :class:`Address` -- the
    protocol requires one identity type everywhere."""
    import typing

    from repro.chain.address import Address, is_address
    from repro.core.batch_service import BatchTokenService
    from repro.core.token_service import TokenService

    assert is_address(replicated_ts.address)
    assert replicated_ts.address_hex == "0x" + replicated_ts.address.hex()
    for cls in (TokenService, BatchTokenService, ReplicatedTokenService):
        hints = typing.get_type_hints(cls.address.fget)
        assert hints["return"] is Address, cls
    # The value itself is what contracts get preloaded with.
    assert replicated_ts.address == replicated_ts.replicas[0].address


def test_submit_carries_errors_instead_of_raising_when_all_down(chain, replicated_ts,
                                                                alice, protected):
    """The protocol batch path never raises mid-batch: with every replica
    down, results carry ``NO_REPLICA`` (the single-request convenience path
    still raises, as test_all_replicas_down_raises pins)."""
    from repro.core.errors import ErrorCode

    for index in range(3):
        replicated_ts.take_down(index)
    request = TokenRequest.method_token(protected.this, alice.address, "submit")
    results = replicated_ts.submit([request, request])
    assert len(results) == 2
    for result in results:
        assert not result.issued
        assert result.code is ErrorCode.NO_REPLICA
        assert isinstance(result.error, NoReplicaAvailable)
