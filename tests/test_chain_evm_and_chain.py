"""Tests for the execution engine and the blockchain (nonces, blocks, reorgs)."""

import pytest

from repro.chain import Blockchain, Contract, external, public
from repro.chain.errors import InvalidTransaction
from repro.chain.evm import CallTracer
from repro.chain.transaction import Transaction

ETHER = 10**18


class Callee(Contract):
    def constructor(self) -> None:
        self.storage["calls"] = 0

    @external
    def ping(self, value: int) -> int:
        self.storage.increment("calls")
        self.storage["last"] = value
        return value * 2

    @public
    def calls(self) -> int:
        return self.storage.get("calls", 0)


class Caller(Contract):
    def constructor(self, callee: bytes) -> None:
        self.storage["callee"] = callee

    @external
    def relay(self, value: int) -> int:
        return self.call_contract(self.storage["callee"], "ping", value)

    @external
    def whoami_chain(self) -> tuple:
        return self.call_contract(self.storage["callee"], "ping", 1), self.msg.sender


class ContextReporter(Contract):
    @external
    def report(self) -> tuple:
        return (self.msg.sender, self.tx_origin)


class ContextRelay(Contract):
    def constructor(self, reporter: bytes) -> None:
        self.storage["reporter"] = reporter

    @external
    def relay(self) -> tuple:
        return self.call_contract(self.storage["reporter"], "report")


# --- message calls -------------------------------------------------------------------


@pytest.fixture
def callee(chain, owner):
    return owner.deploy(Callee).return_value


@pytest.fixture
def caller(chain, owner, callee):
    return owner.deploy(Caller, callee.this).return_value


def test_message_call_executes_and_returns(chain, alice, caller, callee):
    receipt = alice.transact(caller, "relay", 21)
    assert receipt.success
    assert receipt.return_value == 42
    assert chain.read(callee, "calls") == 1


def test_msg_sender_vs_tx_origin_through_call_chain(chain, owner, alice):
    reporter = owner.deploy(ContextReporter).return_value
    relay = owner.deploy(ContextRelay, reporter.this).return_value
    direct = alice.transact(reporter, "report").return_value
    assert direct == (alice.address, alice.address)
    relayed = alice.transact(relay, "relay").return_value
    assert relayed == (relay.this, alice.address)  # msg.sender = relay, origin = alice


def test_inner_call_gas_attributed_to_outer_transaction(alice, caller):
    receipt = alice.transact(caller, "relay", 3)
    # Outer call cost includes the inner SSTOREs plus CALL overhead.
    assert receipt.gas_used > 30_000


# --- nonces and replay protection ---------------------------------------------------------


def test_nonce_must_match_expected(chain, alice, bob, callee):
    tx = alice.build_transaction(callee.this, "ping", (1,))
    assert chain.send_transaction(tx).success
    # Replaying the exact same signed transaction is rejected (§VII-A(b)).
    with pytest.raises(InvalidTransaction):
        chain.send_transaction(tx)


def test_future_nonce_rejected(chain, alice, callee):
    tx = Transaction(sender=alice.address, to=callee.this, nonce=5, method="ping", args=(1,))
    tx.sign_with(alice.keypair)
    with pytest.raises(InvalidTransaction):
        chain.send_transaction(tx)


def test_unsigned_or_tampered_transaction_rejected(chain, alice, callee):
    tx = Transaction(sender=alice.address, to=callee.this, nonce=alice.nonce,
                     method="ping", args=(1,))
    with pytest.raises(InvalidTransaction):
        chain.send_transaction(tx)
    tx.sign_with(alice.keypair)
    tx.args = (999,)  # tamper after signing
    with pytest.raises(InvalidTransaction):
        chain.send_transaction(tx)


def test_sender_cannot_forge_from_address(chain, alice, bob, callee):
    tx = Transaction(sender=bob.address, to=callee.this, nonce=bob.nonce,
                     method="ping", args=(1,))
    tx.sign_with(alice.keypair)  # signed by the wrong key
    with pytest.raises(InvalidTransaction):
        chain.send_transaction(tx)


def test_failed_transaction_still_consumes_nonce(chain, alice, callee):
    first = alice.transact(callee, "nonexistent")
    assert not first.success
    assert alice.nonce == 1
    assert alice.transact(callee, "ping", 2).success


# --- value transfers -------------------------------------------------------------------------


def test_plain_value_transfer_between_eoas(chain, alice, bob):
    before = chain.balance_of(bob)
    receipt = alice.transfer(bob, 2 * ETHER)
    assert receipt.success
    assert chain.balance_of(bob) == before + 2 * ETHER


def test_transfer_more_than_balance_rejected(chain, alice, bob):
    from repro.chain.errors import InsufficientFunds

    with pytest.raises(InsufficientFunds):
        alice.transfer(bob, 10**30)


# --- batch mining -------------------------------------------------------------------------------


def test_batch_mode_mines_pending_pool():
    chain = Blockchain(auto_mine=False)
    owner = chain.create_account("owner", seed="o")
    # Deployment needs auto-mine; switch modes around it.
    chain.auto_mine = True
    callee = owner.deploy(Callee).return_value
    chain.auto_mine = False

    sender = chain.create_account("s", seed="s")
    for i in range(3):
        chain.send_transaction(sender.build_transaction(callee.this, "ping", (i,)))
    assert len(chain.pending) == 3
    height_before = chain.height
    receipts = chain.mine_block()
    assert len(receipts) == 3
    assert all(r.success for r in receipts)
    assert chain.height == height_before + 1
    assert chain.latest_block.transaction_count == 3
    assert chain.read(callee, "calls") == 3


def test_block_timestamps_advance(chain, alice, bob):
    t0 = chain.latest_block.timestamp
    alice.transfer(bob, 1)
    assert chain.latest_block.timestamp > t0


# --- forks and reorgs (51% attack surface) ----------------------------------------------------------


def test_revert_to_block_restores_state_and_receipts(chain, owner, alice, bob):
    callee = owner.deploy(Callee).return_value
    alice.transact(callee, "ping", 1)
    height = chain.height
    receipts_before = len(chain.receipts)

    alice.transact(callee, "ping", 2)
    bob.transfer(alice, 1 * ETHER)
    assert chain.read(callee, "calls") == 2

    chain.revert_to_block(height)
    assert chain.height == height
    assert chain.read(callee, "calls") == 1
    assert len(chain.receipts) == receipts_before


def test_revert_to_unknown_block_rejected(chain):
    with pytest.raises(ValueError):
        chain.revert_to_block(99)


def test_fork_is_isolated_from_main_chain(chain, owner, alice):
    callee = owner.deploy(Callee).return_value
    alice.transact(callee, "ping", 1)
    fork = chain.fork()
    fork_alice = fork.create_account("fa", seed="fa")
    fork_alice.transact(callee, "ping", 2)
    assert fork.read(callee, "calls") == 2
    assert chain.read(callee, "calls") == 1  # main chain untouched


def test_receipts_are_retrievable_by_hash(chain, alice, bob):
    receipt = alice.transfer(bob, 1)
    assert chain.receipt_for(receipt.tx_hash) is receipt


# --- call tracer -----------------------------------------------------------------------------------------


def test_tracer_records_nested_calls(chain, owner, alice, callee, caller):
    chain.trace_transactions = True
    receipt = alice.transact(caller, "relay", 5)
    trace: CallTracer = receipt.trace
    targets = [record.target for record in trace.calls]
    assert caller.this in targets and callee.this in targets
    inner = next(r for r in trace.calls if r.target == callee.this)
    outer = next(r for r in trace.calls if r.target == caller.this)
    assert inner.parent == outer.index
    assert not trace.reentrant_targets()
    assert any(acc.is_write for acc in trace.storage_accesses)
