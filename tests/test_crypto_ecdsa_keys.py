"""Unit tests for ECDSA signatures, recovery and key/address handling."""

import pytest

from repro.crypto.ecdsa import Signature, SignatureError, recover, sign, verify
from repro.crypto.keccak import keccak256
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, recover_address
from repro.crypto.secp256k1 import N


@pytest.fixture
def keypair():
    return KeyPair.from_seed("ecdsa-test-key")


@pytest.fixture
def digest():
    return keccak256(b"a message to be signed")


def test_sign_and_verify_roundtrip(keypair, digest):
    signature = keypair.sign(digest)
    assert keypair.verify(digest, signature)


def test_signature_is_deterministic_rfc6979(keypair, digest):
    assert keypair.sign(digest) == keypair.sign(digest)


def test_different_messages_produce_different_signatures(keypair):
    s1 = keypair.sign(keccak256(b"m1"))
    s2 = keypair.sign(keccak256(b"m2"))
    assert s1 != s2


def test_verify_rejects_wrong_message(keypair, digest):
    signature = keypair.sign(digest)
    assert not keypair.verify(keccak256(b"another message"), signature)


def test_verify_rejects_wrong_key(keypair, digest):
    other = KeyPair.from_seed("someone-else")
    signature = keypair.sign(digest)
    assert not other.verify(digest, signature)


def test_verify_rejects_high_s_signature(keypair, digest):
    """EIP-2 regression: the (r, N - s) mauling of a valid signature is a
    valid classic-ECDSA signature but must be refused by verify."""
    signature = keypair.sign(digest)
    mauled = Signature(signature.r, N - signature.s, signature.v ^ 1)
    assert mauled.s > N // 2  # sign() emits low-s, so the flip is high-s
    assert keypair.verify(digest, signature)
    assert not keypair.verify(digest, mauled)
    # ecrecover (like the precompile) still accepts either form.
    assert recover(digest, mauled) == keypair.public.point


def test_low_s_normalisation(keypair, digest):
    signature = keypair.sign(digest)
    assert signature.s <= N // 2


def test_recover_returns_signer_public_key(keypair, digest):
    signature = keypair.sign(digest)
    assert recover(digest, signature) == keypair.public.point


def test_recover_address_matches_keypair(keypair, digest):
    signature = keypair.sign(digest)
    assert recover_address(digest, signature) == keypair.address


def test_recover_address_differs_for_tampered_digest(keypair, digest):
    signature = keypair.sign(digest)
    assert recover_address(keccak256(b"tampered"), signature) != keypair.address


def test_signature_serialisation_roundtrip(keypair, digest):
    signature = keypair.sign(digest)
    raw = signature.to_bytes()
    assert len(raw) == 65
    assert Signature.from_bytes(raw) == signature


def test_signature_from_bytes_accepts_ethereum_v_offset(keypair, digest):
    signature = keypair.sign(digest)
    raw = bytearray(signature.to_bytes())
    raw[64] += 27  # Ethereum encodes v as 27/28
    assert Signature.from_bytes(bytes(raw)) == signature


def test_signature_rejects_bad_length():
    with pytest.raises(SignatureError):
        Signature.from_bytes(b"\x01" * 64)


@pytest.mark.parametrize("raw_v", [2, 3, 14, 26, 29, 255])
def test_signature_from_bytes_rejects_invalid_v(keypair, digest, raw_v):
    """Raw v bytes outside {0, 1, 27, 28} fail with a clear message instead
    of falling through to the constructor's generic range error."""
    raw = bytearray(keypair.sign(digest).to_bytes())
    raw[64] = raw_v
    with pytest.raises(SignatureError, match="recovery id byte"):
        Signature.from_bytes(bytes(raw))


@pytest.mark.parametrize("raw_v", [0, 1, 27, 28])
def test_signature_from_bytes_accepts_all_valid_v_encodings(raw_v):
    raw = (1).to_bytes(32, "big") + (1).to_bytes(32, "big") + bytes([raw_v])
    signature = Signature.from_bytes(raw)
    assert signature.v == (raw_v - 27 if raw_v >= 27 else raw_v)


def test_signature_rejects_out_of_range_components():
    with pytest.raises(SignatureError):
        Signature(0, 1, 0)
    with pytest.raises(SignatureError):
        Signature(1, N, 0)
    with pytest.raises(SignatureError):
        Signature(1, 1, 5)


def test_sign_requires_32_byte_digest(keypair):
    with pytest.raises(SignatureError):
        sign(b"short", keypair.private.secret)


def test_verify_requires_32_byte_digest(keypair, digest):
    signature = keypair.sign(digest)
    with pytest.raises(SignatureError):
        verify(b"short", signature, keypair.public.point)


def test_private_key_range_validation():
    with pytest.raises(ValueError):
        PrivateKey(0)
    with pytest.raises(ValueError):
        PrivateKey(N)


def test_public_key_serialisation_roundtrip(keypair):
    raw = keypair.public.to_bytes()
    assert len(raw) == 64
    assert PublicKey.from_bytes(raw) == keypair.public


def test_address_is_20_bytes_and_stable(keypair):
    assert len(keypair.address) == 20
    assert keypair.address == keypair.private.public_key().address()
    assert keypair.address_hex.startswith("0x")
    assert len(keypair.address_hex) == 42


def test_from_seed_is_deterministic_and_distinct():
    assert KeyPair.from_seed("a").address == KeyPair.from_seed("a").address
    assert KeyPair.from_seed("a").address != KeyPair.from_seed("b").address


def test_generated_keys_are_distinct():
    assert KeyPair.generate().address != KeyPair.generate().address


def test_private_key_bytes_roundtrip(keypair):
    raw = keypair.private.to_bytes()
    assert len(raw) == 32
    assert PrivateKey.from_bytes(raw) == keypair.private
