"""Unit tests for the Token Service (issuance, rules, batching, persistence)."""

import pytest

from repro.chain.clock import SimulatedClock
from repro.core.acr import RuleSet, WhitelistRule
from repro.core.token import ONE_TIME_UNSET, TokenType
from repro.core.token_request import TokenRequest
from repro.core.token_service import (
    DEFAULT_TOKEN_LIFETIME,
    TokenDenied,
    TokenService,
    build_fig6_ruleset,
)
from repro.crypto.keys import KeyPair

ALICE = KeyPair.from_seed("ts-alice").address
EVE = KeyPair.from_seed("ts-eve").address
CONTRACT = KeyPair.from_seed("ts-contract").address


@pytest.fixture
def clock():
    return SimulatedClock(start=1_000_000)


@pytest.fixture
def service(clock):
    return TokenService(keypair=KeyPair.from_seed("ts-key"), clock=clock)


def test_address_is_derived_from_keypair(service):
    assert service.address == KeyPair.from_seed("ts-key").address
    assert service.address_hex.startswith("0x")


def test_issue_super_token_signed_and_timed(service, clock):
    token = service.issue_token(TokenRequest.super_token(CONTRACT, ALICE))
    assert token.token_type is TokenType.SUPER
    assert token.expire == clock.now() + DEFAULT_TOKEN_LIFETIME
    assert token.index == ONE_TIME_UNSET
    digest = token.digest_for(ALICE, CONTRACT)
    assert service.keypair.verify(digest, token.signature)


def test_issue_method_and_argument_tokens_bind_payload(service):
    method_token = service.issue_token(TokenRequest.method_token(CONTRACT, ALICE, "submit"))
    digest = method_token.digest_for(ALICE, CONTRACT, method="submit")
    assert service.keypair.verify(digest, method_token.signature)

    argument_token = service.issue_token(
        TokenRequest.argument_token(CONTRACT, ALICE, "submit", {"amount": 5})
    )
    good = argument_token.digest_for(ALICE, CONTRACT, method="submit", arguments={"amount": 5})
    bad = argument_token.digest_for(ALICE, CONTRACT, method="submit", arguments={"amount": 6})
    assert service.keypair.verify(good, argument_token.signature)
    assert not service.keypair.verify(bad, argument_token.signature)


def test_one_time_tokens_get_consecutive_indexes(service):
    indexes = [
        service.issue_token(TokenRequest.method_token(CONTRACT, ALICE, "m", one_time=True)).index
        for _ in range(5)
    ]
    assert indexes == [0, 1, 2, 3, 4]


def test_rules_deny_and_raise_with_reason(clock):
    rules = RuleSet()
    rules.add_rule(WhitelistRule([ALICE], name="sender-whitelist"))
    service = TokenService(keypair=KeyPair.from_seed("k"), rules=rules, clock=clock)
    service.issue_token(TokenRequest.super_token(CONTRACT, ALICE))
    with pytest.raises(TokenDenied) as excinfo:
        service.issue_token(TokenRequest.super_token(CONTRACT, EVE))
    assert "whitelist" in str(excinfo.value)
    assert service.issued_count == 1
    assert service.denied_count == 1


def test_try_issue_reports_instead_of_raising(clock):
    rules = RuleSet()
    rules.add_rule(WhitelistRule([ALICE]))
    service = TokenService(keypair=KeyPair.from_seed("k"), rules=rules, clock=clock)
    ok = service.try_issue(TokenRequest.super_token(CONTRACT, ALICE))
    denied = service.try_issue(TokenRequest.super_token(CONTRACT, EVE))
    assert ok.issued and ok.token is not None
    assert not denied.issued and denied.token is None
    assert not denied.decision.allowed


def test_submit_processes_batches(service):
    requests = [TokenRequest.method_token(CONTRACT, ALICE, "m") for _ in range(10)]
    results = service.submit(requests)
    assert len(results) == 10
    assert all(r.issued for r in results)
    single = service.submit(TokenRequest.super_token(CONTRACT, ALICE))
    assert len(single) == 1


def test_dynamic_rule_update_changes_decisions(service):
    request = TokenRequest.super_token(CONTRACT, EVE)
    assert service.try_issue(request).issued  # no rules yet
    service.update_rules(lambda rules: rules.add_rule(WhitelistRule([ALICE])))
    assert not service.try_issue(request).issued
    service.update_rules(lambda rules: rules.remove_rule("whitelist"))
    assert service.try_issue(request).issued


def test_token_lifetime_configuration(service, clock):
    service.set_token_lifetime(60)
    token = service.issue_token(TokenRequest.super_token(CONTRACT, ALICE))
    assert token.expire == clock.now() + 60
    with pytest.raises(ValueError):
        service.set_token_lifetime(0)


def test_audit_log_records_outcomes(clock):
    rules = RuleSet()
    rules.add_rule(WhitelistRule([ALICE]))
    service = TokenService(keypair=KeyPair.from_seed("k"), rules=rules, clock=clock)
    service.try_issue(TokenRequest.super_token(CONTRACT, ALICE))
    service.try_issue(TokenRequest.super_token(CONTRACT, EVE))
    log = service.audit_log()
    assert len(log) == 2
    assert log[0][2] == "issued"
    assert log[1][2].startswith("denied")


def test_persistence_roundtrip(tmp_path, clock):
    path = tmp_path / "ts-state.json"
    rules = build_fig6_ruleset([ALICE])
    service = TokenService(keypair=KeyPair.from_seed("k"), rules=rules, clock=clock,
                           storage_path=path)
    for _ in range(3):
        service.issue_token(TokenRequest.method_token(CONTRACT, ALICE, "m", one_time=True))
    assert path.exists()

    # A restarted service resumes the counter and keeps the whitelist policy.
    restarted = TokenService(keypair=KeyPair.from_seed("k"), clock=clock, storage_path=path)
    token = restarted.issue_token(TokenRequest.method_token(CONTRACT, ALICE, "m", one_time=True))
    assert token.index == 3
    assert not restarted.try_issue(TokenRequest.super_token(CONTRACT, EVE)).issued


def test_build_fig6_ruleset_helper():
    rules = build_fig6_ruleset(
        [ALICE],
        method_blacklists={"withdraw": [EVE]},
        argument_whitelists={"amount": [1, 2]},
    )
    service = TokenService(keypair=KeyPair.from_seed("k"), rules=rules)
    assert service.try_issue(TokenRequest.super_token(CONTRACT, ALICE)).issued
    assert not service.try_issue(TokenRequest.super_token(CONTRACT, EVE)).issued
    assert not service.try_issue(
        TokenRequest.argument_token(CONTRACT, ALICE, "submit", {"amount": 7})
    ).issued
