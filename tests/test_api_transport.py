"""The real wire: framing, fault injection and backpressure on the TCP path.

The conformance suite proves a ``tcp-*`` stack is indistinguishable from the
in-process stacks when everything goes right; this file is about everything
going wrong.  Dead endpoints, servers vanishing mid-batch, malformed and
oversized frames, slow readers and idle connections must all map onto stable
:class:`~repro.core.errors.ErrorCode` values -- and the client must never
hang (every receive is bounded by ``request_timeout``).
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.api import (
    ErrorCode,
    RETRYABLE_CODES,
    ServiceGateway,
    SmacsError,
    build_service,
    codec,
    connect,
    dial,
    serve,
)
from repro.api.transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_HEADER_BYTES,
    TcpTransport,
    endpoint_url,
    parse_endpoint,
)
from repro.core.acr import RuleSet, WhitelistRule
from repro.core.discovery import ServiceDiscovery
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair

ROUTE = "tcp-test-route"


def _gateway(*, rules: "RuleSet | None" = None, profile: str = "serial"):
    service = build_service(
        profile,
        keypair=KeyPair.from_seed("transport-ts"),
        rules=rules if rules is not None else RuleSet(),
    )
    gateway = ServiceGateway()
    gateway.register(ROUTE, service)
    return gateway


def _request(one_time: bool = False) -> TokenRequest:
    return TokenRequest.method_token(
        b"\xaa" * 20, b"\xbb" * 20, "submit", one_time=one_time
    )


def _submit_envelope(batch: int = 1, *, lane: str = codec.CODEC_JSON) -> bytes:
    body = {"requests": [codec.encode_token_request(_request())] * batch}
    return codec.encode_request_envelope("submit", ROUTE, body, codec=lane)


def _framed(payload: bytes) -> bytes:
    return len(payload).to_bytes(FRAME_HEADER_BYTES, "big") + payload


def _read_frame(sock: socket.socket) -> bytes:
    header = b""
    while len(header) < FRAME_HEADER_BYTES:
        chunk = sock.recv(FRAME_HEADER_BYTES - len(header))
        assert chunk, "server closed before a full frame header"
        header += chunk
    length = int.from_bytes(header, "big")
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        assert chunk, "server closed mid-frame"
        payload += chunk
    return payload


# --- endpoint parsing ---------------------------------------------------------------


def test_parse_endpoint_accepts_urls_pairs_and_ipv6():
    assert parse_endpoint("tcp://10.0.0.7:8821") == ("10.0.0.7", 8821)
    assert parse_endpoint("10.0.0.7:8821") == ("10.0.0.7", 8821)
    assert parse_endpoint(("ts.example", 8821)) == ("ts.example", 8821)
    assert parse_endpoint("tcp://[::1]:9000") == ("::1", 9000)
    assert endpoint_url("::1", 9000) == "tcp://[::1]:9000"
    assert parse_endpoint(endpoint_url("127.0.0.1", 80)) == ("127.0.0.1", 80)


@pytest.mark.parametrize("bad", ["tcp://no-port", "https://x:1x", "", "host:"])
def test_parse_endpoint_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_endpoint(bad)


# --- happy path over real sockets ---------------------------------------------------


@pytest.mark.parametrize("lane", codec.CODECS)
def test_round_trip_in_both_codec_lanes(lane):
    with serve(_gateway()) as server:
        client = connect(server.url, wire_codec=lane)
        try:
            results = client.submit([_request(), _request(one_time=True)])
            assert [result.issued for result in results] == [True, True]
            stats = client.stats()
            assert stats["transport"]["kind"] == "tcp"
            assert stats["transport"]["requests"] >= 2
        finally:
            client.close()


def test_connect_prefers_the_dialled_url_as_route():
    gateway = _gateway()
    with serve(gateway) as server:
        # The §VII-B convention: the published TS URL doubles as the route.
        gateway.register(server.url, gateway.issuer_for(ROUTE))
        client = connect(server.url)
        try:
            assert client.route == server.url
        finally:
            client.close()


def test_connect_without_route_needs_an_unambiguous_server():
    gateway = _gateway()
    gateway.register("second-route", gateway.issuer_for(ROUTE))
    with serve(gateway) as server:
        with pytest.raises(ValueError, match="cannot infer a route"):
            connect(server.url)
        client = connect(server.url, route=ROUTE)
        try:
            assert client.submit(_request())[0].issued
        finally:
            client.close()


# --- fault: endpoint never reachable ------------------------------------------------


def test_dead_endpoint_is_unavailable_and_retryable():
    transport = TcpTransport("tcp://127.0.0.1:9", connect_timeout=0.5)
    with pytest.raises(SmacsError) as failure:
        transport.send(_submit_envelope())
    assert failure.value.code is ErrorCode.UNAVAILABLE
    assert failure.value.retryable
    assert ErrorCode.UNAVAILABLE in RETRYABLE_CODES


def test_failover_skips_the_dead_endpoint():
    with serve(_gateway()) as server:
        client = connect(
            ["tcp://127.0.0.1:9", server.url], route=ROUTE, connect_timeout=0.5
        )
        try:
            for _ in range(3):  # round-robin keeps landing on the dead one first
                assert client.submit(_request())[0].issued
            assert client.stats()["transport"]["failovers"] >= 1
        finally:
            client.close()


# --- fault: server vanishes mid-conversation ----------------------------------------


def test_server_gone_mid_batch_is_unavailable_not_a_hang():
    server = serve(_gateway())
    client = connect(server.url, request_timeout=2.0)
    try:
        assert client.submit(_request())[0].issued
        server.close()
        started = time.monotonic()
        with pytest.raises(SmacsError) as failure:
            client.submit([_request()] * 4)
        assert failure.value.code is ErrorCode.UNAVAILABLE
        assert failure.value.retryable
        assert time.monotonic() - started < 10.0  # bounded, never a hang
    finally:
        client.close()


def test_stale_pooled_connection_is_redialled_transparently():
    with serve(_gateway(), idle_timeout=0.2) as server:
        client = connect(server.url, connect_timeout=2.0)
        try:
            assert client.submit(_request())[0].issued
            deadline = time.monotonic() + 5.0
            while server.stats()["idle_closes"] < 1:
                assert time.monotonic() < deadline, "server never idled the connection"
                time.sleep(0.02)
            # The pooled socket is now dead; the request was never sent on a
            # live connection, so one fresh dial replays it safely.
            assert client.submit(_request())[0].issued
            assert client.stats()["transport"]["reconnects"] == 1
        finally:
            client.close()


# --- fault: framing violations ------------------------------------------------------


def test_malformed_frame_gets_an_error_envelope_then_a_close():
    with serve(_gateway(), max_frame_bytes=1024) as server:
        with socket.create_connection(parse_endpoint(server.url), timeout=2.0) as sock:
            sock.settimeout(2.0)
            sock.sendall((1 << 31).to_bytes(FRAME_HEADER_BYTES, "big") + b"junk")
            with pytest.raises(SmacsError) as failure:
                codec.decode_response_envelope(_read_frame(sock))
            assert failure.value.code is ErrorCode.MALFORMED_REQUEST
            assert sock.recv(1) == b""  # framing is unrecoverable: closed
        assert server.stats()["malformed_frames"] == 1


def test_zero_length_frame_is_malformed():
    with serve(_gateway()) as server:
        with socket.create_connection(parse_endpoint(server.url), timeout=2.0) as sock:
            sock.settimeout(2.0)
            sock.sendall((0).to_bytes(FRAME_HEADER_BYTES, "big"))
            with pytest.raises(SmacsError) as failure:
                codec.decode_response_envelope(_read_frame(sock))
            assert failure.value.code is ErrorCode.MALFORMED_REQUEST


def test_garbage_payload_is_answered_not_fatal():
    # A well-framed but undecodable payload is the gateway's problem, not the
    # transport's: the connection survives and the next request works.
    with serve(_gateway()) as server:
        with socket.create_connection(parse_endpoint(server.url), timeout=2.0) as sock:
            sock.settimeout(2.0)
            sock.sendall(_framed(b"\x00\xff\x00\xff"))
            with pytest.raises(SmacsError) as failure:
                codec.decode_response_envelope(_read_frame(sock))
            assert failure.value.code is ErrorCode.MALFORMED_REQUEST
            sock.sendall(_framed(_submit_envelope()))
            answer = codec.decode_response_envelope(_read_frame(sock))
            assert codec.decode_issuance_result(answer["results"][0]).issued


def test_oversized_request_is_rejected_client_side():
    transport = TcpTransport("tcp://127.0.0.1:9", max_frame_bytes=64)
    with pytest.raises(SmacsError) as failure:
        transport.send(b"x" * 65)
    assert failure.value.code is ErrorCode.MALFORMED_REQUEST
    assert DEFAULT_MAX_FRAME_BYTES == 8 * 1024 * 1024


# --- fault: slow reader (backpressure) ----------------------------------------------


def test_slow_reader_is_disconnected_and_others_stay_served():
    # Deny-everything rules make each submit cheap (no signing), so one frame
    # can fan out to a large response without crypto cost dominating.
    nobody = RuleSet()
    nobody.add_rule(WhitelistRule([], name="nobody"))
    gateway = _gateway(rules=nobody)
    with serve(gateway, write_timeout=0.3) as server:
        slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            slow.connect(parse_endpoint(server.url))
            slow.settimeout(5.0)
            frame = _framed(_submit_envelope(batch=400))
            # Pipeline many large-response requests and never read a byte:
            # the kernel buffers fill, drain() stalls past write_timeout and
            # the server cuts the connection instead of buffering forever.
            deadline = time.monotonic() + 15.0
            while server.stats()["backpressure_closes"] < 1:
                assert time.monotonic() < deadline, "backpressure never triggered"
                try:
                    slow.sendall(frame)
                except (socket.timeout, OSError):
                    time.sleep(0.05)  # our send side jammed; wait for the cut
            assert server.stats()["backpressure_closes"] == 1
        finally:
            slow.close()
        # The event loop was never blocked: a well-behaved client is served.
        client = connect(server.url)
        try:
            assert client.submit(_request())[0].code is ErrorCode.DENIED
        finally:
            client.close()


# --- edge rate limiting -------------------------------------------------------------


def test_edge_rate_limit_answers_rate_limited_envelopes():
    fake = {"t": 0.0}
    with serve(
        _gateway(), rate_limit=(10, 3), now=lambda: fake["t"]
    ) as server:
        client = connect(server.url)  # the route-discovery probe spends 1 token
        try:
            assert client.submit(_request())[0].issued
            assert client.submit(_request())[0].issued
            with pytest.raises(SmacsError) as failure:
                client.submit(_request())
            assert failure.value.code is ErrorCode.RATE_LIMITED
            assert failure.value.retryable
            assert server.stats()["frames_limited"] == 1
            fake["t"] += 1.0  # refill the edge bucket
            assert client.submit(_request())[0].issued
        finally:
            client.close()


# --- discovery integration ----------------------------------------------------------


def test_dial_resolves_contract_metadata_to_a_live_wire_client(chain, owner):
    from repro.contracts.protected_target import ProtectedRecorder
    from repro.core import OwnerWallet

    service = build_service(
        "serial", keypair=KeyPair.from_seed("transport-ts"), clock=chain.clock
    )
    gateway = ServiceGateway()
    with serve(gateway) as server:
        gateway.register(server.url, service)
        contract = OwnerWallet(owner, service).deploy_protected(
            ProtectedRecorder, one_time_bitmap_bits=1024, ts_url=server.url
        ).return_value

        discovery = ServiceDiscovery(chain, dialer=dial)
        issuer = discovery.resolve(contract.this)
        assert issuer is not None
        assert issuer.submit(_request())[0].issued
        # Cached: resolving twice dials once.
        assert discovery.resolve(contract.this) is issuer
        issuer.close()


def test_dial_returns_none_for_foreign_schemes_and_dead_hosts():
    assert dial("https://ts.example.org") is None
    assert dial("tcp://127.0.0.1:9") is None
