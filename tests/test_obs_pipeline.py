"""Stage timers through the full pipeline + durable store, and the exporters.

The profiling hooks must (a) attribute a real workload's time to the named
stages (admission, build, pre_warm, execute, commit_fsync), (b) cost nothing
but one attribute check when disabled, and (c) export through every path --
``Observability.snapshot``, the stage breakdown, and the
``python -m repro.obs.dump`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import OwnerWallet
from repro.core.acr import RuleSet
from repro.core.replication import ReplicatedTokenService
from repro.crypto.keys import KeyPair
from repro.crypto.sigcache import SignatureCache
from repro.obs import STAGES, Observability, disable, enable, observability
from repro.obs.dump import load_snapshot, main as dump_main, render_text
from repro.pipeline import ExecutionPipeline, SmacsLoadGenerator
from repro.storage import DurableStore


@pytest.fixture
def cache():
    return SignatureCache(maxsize=65536)


@pytest.fixture
def env(cache):
    chain = Blockchain(auto_mine=False)
    chain.evm.signature_cache = cache
    chain.auto_mine = True
    owner = chain.create_account("owner", seed="obs-owner")
    clients = [
        chain.create_account(f"client-{i}", seed=f"obs-client-{i}") for i in range(4)
    ]
    service = ReplicatedTokenService(
        replica_count=3,
        keypair=KeyPair.from_seed("obs-ts"),
        rules=RuleSet(),
        clock=chain.clock,
        seed=29,
        signature_cache=cache,
    )
    recorder = OwnerWallet(owner, service.replicas[0]).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=4096
    ).return_value
    chain.auto_mine = False
    return {"chain": chain, "clients": clients, "service": service, "recorder": recorder}


def _run_workload(env, cache, obs: "Observability | None", tmp_path=None):
    pipeline = ExecutionPipeline(env["chain"], signature_cache=cache)
    store = None
    if tmp_path is not None:
        store = DurableStore(str(tmp_path), "sqlite")
        store.attach(pipeline)
    if obs is not None:
        obs.instrument_pipeline(pipeline)
    generator = SmacsLoadGenerator(env["service"], env["recorder"], env["clients"])
    txs = generator.from_arrivals([3, 4, 3])
    decisions = pipeline.ingest(txs)
    results = pipeline.drain()
    if store is not None:
        store.close()
    return pipeline, decisions, results


def test_stage_timers_attribute_a_durable_workload(env, cache, tmp_path):
    """All five pipeline stages (plus the WAL fsync) populate histograms."""
    obs = Observability()
    pipeline, decisions, results = _run_workload(env, cache, obs, tmp_path)
    assert all(d.admitted for d in decisions)
    assert sum(r.executed for r in results) == 10

    breakdown = obs.stage_breakdown()
    assert breakdown["admission"]["count"] == 10  # one sample per transaction
    blocks = pipeline.blocks_executed
    assert breakdown["build"]["count"] >= blocks
    assert breakdown["pre_warm"]["count"] == blocks
    assert breakdown["execute"]["count"] == blocks
    # Block commits fsync the WAL; admission records append unsynced.
    assert breakdown["commit_fsync"]["count"] >= blocks
    for stage, row in breakdown.items():
        assert row["p50_ms"] is None or row["p50_ms"] >= 0.0, stage

    # Tracing was on: block spans nest the stage spans.
    spans = obs.tracer.finished_spans()
    roots = [s for s in spans if s.name == "pipeline.run_block"]
    assert len(roots) == blocks
    children = [s for s in spans if s.parent_id == roots[0].span_id]
    assert {"stage.build", "stage.pre_warm", "stage.execute"} <= {
        s.name for s in children
    }


def test_metrics_without_tracing_records_stages_only(env, cache):
    obs = Observability(tracing=False)
    _run_workload(env, cache, obs)
    assert obs.stage_breakdown()["admission"]["count"] == 10
    assert obs.tracer.finished_spans() == []
    assert obs.snapshot()["tracing"] is False


def test_disabled_path_is_untouched(env, cache):
    """obs=None: no handle anywhere, and behaviour is byte-identical."""
    pipeline, decisions, results = _run_workload(env, cache, None)
    assert pipeline.obs is None
    assert pipeline.mempool.obs is None
    assert pipeline.builder.obs is None
    assert pipeline.executor.obs is None
    assert all(d.admitted for d in decisions)
    assert sum(r.succeeded for r in results) == 10


def test_instrumented_run_matches_uninstrumented_decisions(env, cache):
    """Instrumentation is observation only: same admissions, same receipts."""
    obs = Observability()
    _, decisions, results = _run_workload(env, cache, obs)
    assert all(d.admitted for d in decisions)
    assert sum(r.succeeded for r in results) == 10
    assert sum(r.prewarm_hits for r in results) == 10


def test_attach_after_instrument_still_times_the_wal(env, cache, tmp_path):
    """Either order of instrument_pipeline() / DurableStore.attach() works."""
    pipeline = ExecutionPipeline(env["chain"], signature_cache=cache)
    obs = Observability()
    obs.instrument_pipeline(pipeline)  # before attach: no durability yet
    store = DurableStore(str(tmp_path), "sqlite")
    store.attach(pipeline)  # attach propagates pipeline.obs to the WAL
    assert store.wal.obs is obs
    generator = SmacsLoadGenerator(env["service"], env["recorder"], env["clients"])
    pipeline.ingest(generator.from_arrivals([4]))
    pipeline.drain()
    store.close()
    assert obs.stage_breakdown()["commit_fsync"]["count"] >= 1


def test_process_local_handle_lifecycle():
    assert observability() is None
    handle = enable(tracing=False)
    try:
        assert observability() is handle
        assert handle.tracer.enabled is False
    finally:
        displaced = disable()
    assert displaced is handle
    assert observability() is None


def test_stage_breakdown_orders_canonical_stages_first():
    obs = Observability()
    obs.record_stage("custom_stage", 0.001)
    obs.record_stage("execute", 0.002)
    obs.record_stage("admission", 0.003)
    names = list(obs.stage_breakdown())
    assert names == ["admission", "execute", "custom_stage"]
    assert set(STAGES) == {
        "gateway_decode", "issuance", "admission", "build",
        "pre_warm", "execute", "commit_fsync",
    }


# --- the dump CLI -------------------------------------------------------------------


def _snapshot_fixture() -> dict:
    obs = Observability()
    obs.registry.counter("gateway.requests").inc(3)
    obs.record_stage("admission", 0.002)
    with obs.tracer.span("pipeline.run_block"):
        pass
    return obs.snapshot()


def test_dump_renders_text_and_json(tmp_path, capsys):
    snapshot = _snapshot_fixture()
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(snapshot))

    assert dump_main([str(path)]) == 0
    text = capsys.readouterr().out
    assert "admission" in text
    assert "gateway.requests" in text
    assert "tracing on" in text

    assert dump_main([str(path), "--format", "json"]) == 0
    reparsed = json.loads(capsys.readouterr().out)
    assert reparsed["stages"]["admission"]["count"] == 1


def test_dump_accepts_wire_response_bodies(tmp_path):
    """The CLI unwraps a saved ``{"metrics": {...}}`` response body."""
    snapshot = _snapshot_fixture()
    path = tmp_path / "resp.json"
    path.write_text(json.dumps({"metrics": snapshot}))
    loaded = load_snapshot(str(path))
    assert loaded["enabled"] is True
    assert loaded["stages"]["admission"]["count"] == 1


def test_render_text_handles_disabled_and_empty():
    assert "disabled" in render_text({"enabled": False})
    assert render_text({}) == "observability: empty snapshot"


def test_dump_fetches_a_live_gateway_over_tcp():
    from repro.api import ServiceGateway, build_service, connect, serve
    from repro.chain.address import to_address
    from repro.core.token_request import TokenRequest
    from repro.obs.dump import load_snapshot

    gateway = ServiceGateway(observability=Observability())
    gateway.register("https://ts.dump.example", build_service("serial", seed=5))
    with serve(gateway) as server:
        client = connect(server.url, route="https://ts.dump.example")
        try:
            client.submit(
                TokenRequest.method_token(to_address(1), to_address(2), "submit")
            )
        finally:
            client.close()
        snapshot = load_snapshot(server.url)  # tcp:// dispatches to fetch_snapshot
    assert snapshot["enabled"] is True
    assert snapshot["stages"]["issuance"]["count"] == 1
    assert "issuance" in render_text(snapshot)
