"""Integration tests for the durability engine: WAL commits, crash recovery.

Each test builds a full node (chain + pipeline + replicated TS + deployed
recorder), attaches a :class:`~repro.storage.DurableStore`, drives real
token-carrying load through it, and then exercises one leg of the crash
model: clean restarts, page-cache loss at the commit fsync, torn and
bit-flipped tails, compaction into the backend, stale/partial WAL images.
Recovery is always checked against *block-derived* ground truth: the state
root stamped into the last durable block.
"""

from types import SimpleNamespace

import pytest

from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import OwnerWallet
from repro.core.acr import RuleSet
from repro.core.replication import ReplicatedTokenService
from repro.crypto.keys import KeyPair
from repro.crypto.sigcache import SignatureCache
from repro.faults.disk import DiskFaultInjector, SimulatedCrash
from repro.pipeline import ExecutionPipeline, SmacsLoadGenerator
from repro.storage import (
    DurabilityError,
    DurableStore,
    RecoveryError,
    StateRootTracker,
    WriteAheadLog,
    state_root,
)
from repro.storage.codec import encode_value


def _node():
    """One deterministic node: same seeds -> same accounts, contract, tokens."""
    chain = Blockchain(auto_mine=False)
    pipeline = ExecutionPipeline(chain, signature_cache=SignatureCache())
    chain.auto_mine = True
    owner = chain.create_account("owner", seed="dur-owner")
    clients = [chain.create_account(f"c{i}", seed=f"dur-client-{i}") for i in range(4)]
    service = ReplicatedTokenService(
        replica_count=3,
        keypair=KeyPair.from_seed("dur-ts"),
        rules=RuleSet(),
        clock=chain.clock,
        seed=77,
        signature_cache=pipeline.signature_cache,
    )
    recorder = OwnerWallet(owner, service.replicas[0]).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=4096
    ).return_value
    chain.auto_mine = False
    generator = SmacsLoadGenerator(service, recorder, clients)
    return SimpleNamespace(
        chain=chain,
        pipeline=pipeline,
        service=service,
        recorder=recorder,
        clients=clients,
        generator=generator,
    )


def _run_batch(node, count):
    txs = node.generator.from_arrivals([count])
    decisions = node.pipeline.ingest(txs)
    assert all(d.admitted for d in decisions)
    node.pipeline.run_block()


# --- root stamping ------------------------------------------------------------------


def test_blocks_carry_verifiable_state_roots(tmp_path):
    node = _node()
    store = DurableStore(str(tmp_path / "n"), "memory")
    store.attach(node.pipeline)
    _run_batch(node, 5)
    first = node.chain.latest_block
    _run_batch(node, 5)
    second = node.chain.latest_block
    assert first.state_root and second.state_root
    assert first.state_root != second.state_root
    assert second.state_root == state_root(node.chain.state)
    assert store.blocks_committed == 2
    # the state root participates in the block hash
    assert first.hash() != second.hash()
    store.close()


def test_admissions_are_logged_and_rejections_are_not(tmp_path):
    node = _node()
    store = DurableStore(str(tmp_path / "n"), "memory")
    store.attach(node.pipeline)
    txs = node.generator.from_arrivals([4])
    node.pipeline.ingest(txs)
    assert store.admissions_logged == 4
    node.pipeline.ingest([txs[0]])  # duplicate: refused at admission
    assert store.admissions_logged == 4
    store.close()


def test_commit_protocol_misuse_is_loud(tmp_path):
    node = _node()
    store = DurableStore(str(tmp_path / "n"), "memory")
    store.attach(node.pipeline)
    with pytest.raises(DurabilityError):
        store.commit_block(node.chain.latest_block, None)
    with pytest.raises(DurabilityError):
        store._seal_block(node.chain.state)  # no begin_block() checkpoint
    store.close()


# --- clean restart and crash-before-fsync -------------------------------------------


def test_clean_restart_recovers_everything(tmp_path):
    workdir = str(tmp_path / "n")
    node1 = _node()
    store1 = DurableStore(workdir, "sqlite")
    store1.attach(node1.pipeline)
    _run_batch(node1, 6)
    _run_batch(node1, 6)
    final_root = node1.chain.latest_block.state_root
    entries = node1.chain.read(node1.recorder, "entries")
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite")
    report = store2.recover_into(node2.pipeline)
    assert report.recovered_height == node1.chain.height
    assert report.state_root == final_root
    assert state_root(node2.chain.state) == final_root
    assert node2.chain.read(node2.recorder, "entries") == entries
    assert [len(b.transactions) for b in report.blocks] == [6, 6]
    store2.close()


def test_crash_before_fsync_loses_only_the_inflight_block(tmp_path):
    workdir = str(tmp_path / "n")
    node1 = _node()
    injector = DiskFaultInjector("crash-before-fsync")
    store1 = DurableStore(workdir, "sqlite", fsync_on_admit=True, hooks=injector)
    store1.attach(node1.pipeline)
    _run_batch(node1, 6)
    durable_root = node1.chain.latest_block.state_root

    doomed = node1.generator.from_arrivals([5])
    node1.pipeline.ingest(doomed)
    injector.arm()
    with pytest.raises(SimulatedCrash):
        node1.pipeline.run_block()
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite", fsync_on_admit=True)
    report = store2.recover_into(node2.pipeline)
    # the durable prefix: exactly the first block, root-verified
    assert len(report.blocks) == 1
    assert report.state_root == durable_root
    assert state_root(node2.chain.state) == durable_root
    # the doomed batch was fsync'd at admission and comes back as mempool
    assert report.mempool_seen == 5
    assert report.readmitted == 5
    assert report.readmission_refused == 0
    # recovery re-primed the signature cache: the drain pre-warm is all hits
    assert report.signatures_primed > 0
    store2.attach(node2.pipeline)
    results = node2.pipeline.drain()
    assert sum(r.executed for r in results) == 5
    assert sum(r.prewarm_hits for r in results) == 5
    assert sum(r.prewarm_misses for r in results) == 0
    assert node2.chain.read(node2.recorder, "entries") == 11
    assert node2.chain.latest_block.state_root == state_root(node2.chain.state)
    store2.close()


def test_unsynced_admissions_die_with_the_page_cache(tmp_path):
    """Without fsync_on_admit, pooled admissions ride the next block's fsync."""
    workdir = str(tmp_path / "n")
    node1 = _node()
    injector = DiskFaultInjector("crash-before-fsync")
    store1 = DurableStore(workdir, "sqlite", fsync_on_admit=False, hooks=injector)
    store1.attach(node1.pipeline)
    _run_batch(node1, 6)
    node1.pipeline.ingest(node1.generator.from_arrivals([5]))
    injector.arm()
    with pytest.raises(SimulatedCrash):
        node1.pipeline.run_block()
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite")
    report = store2.recover_into(node2.pipeline)
    assert len(report.blocks) == 1  # the durable block survived
    assert report.mempool_seen == 0  # the unsynced admissions did not
    store2.close()


@pytest.mark.parametrize("mode", ["torn-write", "bit-flip"])
def test_torn_and_bitflipped_tails_recover_the_durable_prefix(tmp_path, mode):
    workdir = str(tmp_path / "n")
    node1 = _node()
    injector = DiskFaultInjector(mode)
    store1 = DurableStore(workdir, "sqlite", fsync_on_admit=True, hooks=injector)
    store1.attach(node1.pipeline)
    _run_batch(node1, 6)
    durable_root = node1.chain.latest_block.state_root
    node1.pipeline.ingest(node1.generator.from_arrivals([5]))
    injector.arm()
    with pytest.raises(SimulatedCrash):
        node1.pipeline.run_block()
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite")
    report = store2.recover_into(node2.pipeline)
    assert report.wal is not None and report.wal.torn_tail
    assert report.wal.truncated_bytes > 0
    assert len(report.blocks) == 1
    assert report.state_root == durable_root
    assert state_root(node2.chain.state) == durable_root
    store2.close()


def test_stale_wal_cut_recovers_a_strict_consistent_prefix(tmp_path):
    """A frame-aligned stale cut looks like an earlier crash: prefix recovery.

    (A stale WAL *conflicting with the backend snapshot* is the detectable
    case -- see ``test_wal_gap_behind_a_backend_snapshot_is_loud``.)
    """
    workdir = str(tmp_path / "n")
    node1 = _node()
    injector = DiskFaultInjector("stale-wal")
    store1 = DurableStore(workdir, "sqlite", hooks=injector)
    store1.attach(node1.pipeline)
    _run_batch(node1, 4)
    _run_batch(node1, 4)
    first_root = node1.chain.blocks[-2].state_root
    node1.pipeline.ingest(node1.generator.from_arrivals([4]))
    injector.arm()
    with pytest.raises(SimulatedCrash):
        node1.pipeline.run_block()
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite")
    report = store2.recover_into(node2.pipeline)
    # the cut landed on the fsync boundary before block 2: one block survives
    assert len(report.blocks) == 1
    assert report.state_root == first_root
    assert state_root(node2.chain.state) == first_root
    store2.close()


# --- compaction ---------------------------------------------------------------------


def test_flush_compacts_into_backend_and_recovery_uses_it(tmp_path):
    workdir = str(tmp_path / "n")
    node1 = _node()
    store1 = DurableStore(workdir, "sqlite")
    store1.attach(node1.pipeline)
    _run_batch(node1, 6)
    _run_batch(node1, 6)
    store1.flush()
    assert store1.wal.size < 100  # the log was truncated to (near) empty
    _run_batch(node1, 6)
    final_root = node1.chain.latest_block.state_root
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite")
    report = store2.recover_into(node2.pipeline)
    assert report.sources == ["backend"]
    assert len(report.blocks) == 1  # only the post-compaction block replays
    assert report.state_root == final_root
    assert node2.chain.read(node2.recorder, "entries") == 18
    store2.close()


def test_flush_relogs_surviving_mempool_transactions(tmp_path):
    workdir = str(tmp_path / "n")
    node1 = _node()
    store1 = DurableStore(workdir, "sqlite")
    store1.attach(node1.pipeline)
    _run_batch(node1, 4)
    node1.pipeline.ingest(node1.generator.from_arrivals([3]))  # pooled, not mined
    store1.flush()
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite")
    report = store2.recover_into(node2.pipeline)
    assert report.mempool_seen == 3
    assert report.readmitted == 3
    store2.close()


# --- images that must be refused ----------------------------------------------------


def test_recovering_an_empty_directory_is_loud(tmp_path):
    node = _node()
    store = DurableStore(str(tmp_path / "fresh"), "sqlite")
    with pytest.raises(RecoveryError, match="nothing to recover"):
        store.recover_into(node.pipeline)
    store.close()


def test_wal_gap_is_loud(tmp_path):
    workdir = tmp_path / "n"
    workdir.mkdir()
    wal = WriteAheadLog(str(workdir / "wal.log"))
    empty_root = StateRootTracker().root
    wal.append(
        encode_value({"kind": "base", "height": 0, "root": empty_root, "accounts": {}}),
        sync=True,
    )
    # block 2 with no block 1 before it: a stale or partial WAL image
    wal.append(encode_value({"kind": "block", "number": 2}), sync=True)
    wal.close()

    node = _node()
    store = DurableStore(str(workdir), "memory")
    with pytest.raises(RecoveryError, match="WAL gap"):
        store.recover_into(node.pipeline)
    store.close()


def test_unknown_wal_record_kind_is_loud(tmp_path):
    workdir = tmp_path / "n"
    workdir.mkdir()
    wal = WriteAheadLog(str(workdir / "wal.log"))
    wal.append(encode_value({"kind": "gossip"}), sync=True)
    wal.close()
    node = _node()
    store = DurableStore(str(workdir), "memory")
    with pytest.raises(RecoveryError, match="unknown WAL record kind"):
        store.recover_into(node.pipeline)
    store.close()


def test_tampered_base_snapshot_fails_its_root_check(tmp_path):
    workdir = tmp_path / "n"
    workdir.mkdir()
    wal = WriteAheadLog(str(workdir / "wal.log"))
    wal.append(
        encode_value(
            {
                "kind": "base",
                "height": 0,
                "root": b"\x00" * 32,  # wrong on purpose
                "accounts": {},
            }
        ),
        sync=True,
    )
    wal.close()
    node = _node()
    store = DurableStore(str(workdir), "memory")
    with pytest.raises(RecoveryError, match="does not hash to its state root"):
        store.recover_into(node.pipeline)
    store.close()


# --- resuming after recovery --------------------------------------------------------


def test_recovered_node_resumes_issuance_without_index_reuse(tmp_path):
    """The full restart loop: recover, fast-forward the counter, keep going."""
    workdir = str(tmp_path / "n")
    node1 = _node()
    injector = DiskFaultInjector("crash-before-fsync")
    store1 = DurableStore(workdir, "sqlite", fsync_on_admit=True, hooks=injector)
    store1.attach(node1.pipeline)
    _run_batch(node1, 6)
    node1.pipeline.ingest(node1.generator.from_arrivals([5]))
    injector.arm()
    with pytest.raises(SimulatedCrash):
        node1.pipeline.run_block()
    store1.close()

    node2 = _node()
    store2 = DurableStore(workdir, "sqlite", fsync_on_admit=True)
    report = store2.recover_into(node2.pipeline)
    store2.attach(node2.pipeline)
    node2.pipeline.drain()  # the re-admitted batch
    node2.service.replicas[0].counter.restore(report.max_one_time_index + 1)
    node2.generator.refresh_nonces()
    _run_batch(node2, 6)  # fresh post-restart traffic

    # block-derived one-time uniqueness across the restart boundary
    from repro.core.token import Token

    seen = set()
    sources = [
        (tx, ok)
        for block in report.blocks
        for tx, ok in zip(block.transactions, block.statuses)
    ] + [
        (tx, node2.chain.receipts[tx.hash()].success)
        for block in node2.chain.blocks
        for tx in block.transactions
    ]
    accepted = 0
    for tx, ok in sources:
        raw = tx.kwargs.get("token")
        if not ok or not isinstance(raw, (bytes, bytearray)):
            continue
        token = Token.from_bytes(bytes(raw))
        if not token.is_one_time:
            continue
        accepted += 1
        key = (bytes(tx.to), token.index)
        assert key not in seen, f"one-time index {token.index} accepted twice"
        seen.add(key)
    assert accepted == 17  # 6 durable + 5 re-admitted + 6 post-restart
    assert node2.chain.read(node2.recorder, "entries") == 17
    assert node2.chain.latest_block.state_root == state_root(node2.chain.state)
    store2.close()
