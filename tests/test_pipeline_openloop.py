"""Unit tests for the open-loop load generator and its latency accounting."""

from __future__ import annotations

import pytest

from repro.api import build_service
from repro.core.acr import RuleSet, WhitelistRule
from repro.core.errors import ErrorCode, SmacsError
from repro.core.token_request import TokenRequest
from repro.pipeline import (
    LatencySummary,
    OpenLoopReport,
    arrival_offsets,
    percentile,
    run_open_loop,
)

CONTRACT = b"\xaa" * 20
CLIENT = b"\xbb" * 20


def _request(index: int) -> TokenRequest:
    return TokenRequest.method_token(CONTRACT, CLIENT, "submit", one_time=True)


# --- percentile ---------------------------------------------------------------------


def test_percentile_is_nearest_rank():
    sample = list(range(1, 101))  # 1..100
    assert percentile(sample, 0.50) == 50
    assert percentile(sample, 0.99) == 99
    assert percentile(sample, 0.999) == 100
    assert percentile(sample, 0.0) == 1
    assert percentile(sample, 1.0) == 100
    assert percentile([42.0], 0.999) == 42.0


def test_percentile_ignores_input_order():
    assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0


def test_percentile_empty_sample_returns_the_none_sentinel():
    """No data is ``None``, never 0.0 and never an exception (regression:
    the empty train used to raise and the summary used to report 0 ms)."""
    assert percentile([], 0.5) is None
    assert percentile([], 0.0) is None
    assert percentile([], 1.0) is None


def test_percentile_single_sample_returns_the_sample():
    for q in (0.0, 0.5, 0.999, 1.0):
        assert percentile([7.5], q) == 7.5


def test_percentile_validates():
    # Range validation still raises -- even on an empty sample, a bad q is
    # a caller bug, not missing data.
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        percentile([], -0.1)


# --- arrival schedule ---------------------------------------------------------------


def test_arrival_offsets_are_a_fixed_rate_train():
    assert arrival_offsets(50, 4) == [0.0, 0.02, 0.04, 0.06]
    assert arrival_offsets(10, 0) == []
    with pytest.raises(ValueError):
        arrival_offsets(0, 5)
    with pytest.raises(ValueError):
        arrival_offsets(10, -1)


# --- summaries ----------------------------------------------------------------------


def test_latency_summary_from_seconds_and_to_data():
    summary = LatencySummary.from_seconds([0.001, 0.002, 0.010])
    assert summary.count == 3
    assert summary.p50_ms == 2.0
    assert summary.max_ms == 10.0
    data = summary.to_data("issuance")
    assert set(data) == {
        "issuance_p50_ms",
        "issuance_p99_ms",
        "issuance_p999_ms",
        "issuance_mean_ms",
        "issuance_max_ms",
    }


def test_latency_summary_handles_the_empty_sample():
    summary = LatencySummary.from_seconds([])
    assert summary.count == 0
    assert summary.p50_ms is None
    assert summary.p999_ms is None
    assert summary.mean_ms is None
    assert summary.max_ms is None
    data = summary.to_data("e2e")
    assert data["e2e_p999_ms"] is None  # JSON null, not a fake 0 ms


def test_latency_summary_single_sample():
    summary = LatencySummary.from_seconds([0.004])
    assert summary.count == 1
    assert summary.p50_ms == summary.p999_ms == summary.max_ms == 4.0


def test_report_rates():
    summary = LatencySummary.from_seconds([])
    report = OpenLoopReport(
        offered_rate_per_s=100.0,
        arrivals=10,
        completed=8,
        failed=2,
        duration_s=2.0,
        service=summary,
        end_to_end=summary,
        errors_by_code={"DENIED": 2},
    )
    assert report.error_rate == 0.2
    assert report.success_rate == 0.8
    assert report.achieved_rate_per_s == 4.0
    data = report.to_data()
    assert data["errors_by_code"] == {"DENIED": 2}
    assert data["arrivals"] == 10


# --- the generator ------------------------------------------------------------------


def test_run_open_loop_completes_every_arrival():
    issuer = build_service("serial")
    report = run_open_loop(
        issuer, _request, rate_per_second=10_000, arrivals=24, workers=4
    )
    assert report.arrivals == 24
    assert report.completed == 24
    assert report.failed == 0
    assert report.error_rate == 0.0
    assert report.service.count == 24
    assert report.end_to_end.count == 24
    # Open-loop: end-to-end includes queueing, so it can only be >= service.
    assert report.end_to_end.mean_ms >= report.service.mean_ms - 1e-6
    # Every one-time index was issued exactly once despite 4 workers.
    assert issuer.stats()["issued"] == 24


def test_run_open_loop_counts_denials_per_code():
    rules = RuleSet()
    rules.add_rule(WhitelistRule([], name="nobody"))
    issuer = build_service("serial", rules=rules)
    report = run_open_loop(
        issuer, _request, rate_per_second=10_000, arrivals=10, workers=2
    )
    assert report.completed == 0
    assert report.failed == 10
    assert report.errors_by_code == {"DENIED": 10}
    assert report.error_rate == 1.0


def test_run_open_loop_counts_raised_transport_errors():
    class DeadIssuer:
        def submit(self, requests):
            raise SmacsError("endpoint is gone", ErrorCode.UNAVAILABLE)

    report = run_open_loop(
        [DeadIssuer()], _request, rate_per_second=10_000, arrivals=6, workers=3
    )
    assert report.failed == 6
    assert report.errors_by_code == {"UNAVAILABLE": 6}


def test_run_open_loop_validates():
    issuer = build_service("serial")
    with pytest.raises(ValueError):
        run_open_loop([], _request, rate_per_second=10, arrivals=1)
    with pytest.raises(ValueError):
        run_open_loop(issuer, _request, rate_per_second=10, arrivals=1, workers=0)
