"""Tests for the case-study and baseline contracts."""

import pytest

from repro.chain import gas
from repro.contracts import (
    Attacker,
    Bank,
    OnChainWhitelist,
    OnChainWhitelistTokenSale,
    RoleBasedVault,
    SMACSTokenSale,
    SimpleToken,
    WhitelistedVault,
)
from repro.core import ClientWallet, TokenType, gas_to_usd
from repro.core.acr import WhitelistRule
from repro.crypto.keys import KeyPair

ETHER = 10**18


# --- Bank / Attacker (Fig. 7) -------------------------------------------------------------


def test_bank_deposit_and_honest_withdraw(chain, owner, alice):
    bank = owner.deploy(Bank).return_value
    alice.transact(bank, "addBalance", value=3 * ETHER)
    assert chain.read(bank, "balanceOf", alice.address) == 3 * ETHER
    before = alice.balance
    assert alice.transact(bank, "withdraw").success
    assert chain.read(bank, "balanceOf", alice.address) == 0
    assert alice.balance == before + 3 * ETHER


def test_bank_withdraw_with_zero_balance_is_noop(chain, owner, bob):
    bank = owner.deploy(Bank).return_value
    receipt = bob.transact(bank, "withdraw")
    assert receipt.success
    assert chain.balance_of(bank) == 0


def test_reentrancy_attack_drains_more_than_deposited(chain, owner, alice, eve):
    bank = owner.deploy(Bank).return_value
    alice.transact(bank, "addBalance", value=10 * ETHER)
    attacker = eve.deploy(Attacker, bank.this, True).return_value
    eve.transact(attacker, "deposit", 2 * ETHER, value=2 * ETHER)

    before = chain.balance_of(attacker)
    receipt = eve.transact(attacker, "withdraw")
    assert receipt.success
    gained = chain.balance_of(attacker) - before
    assert gained == 4 * ETHER  # one re-entrant double withdrawal
    assert chain.read(attacker, "reentry_count") == 1
    # The bank lost the difference out of the victim's deposit.
    assert chain.balance_of(bank) == 8 * ETHER


def test_attack_flag_disabled_makes_attacker_honest(chain, owner, alice, eve):
    bank = owner.deploy(Bank).return_value
    alice.transact(bank, "addBalance", value=10 * ETHER)
    attacker = eve.deploy(Attacker, bank.this, False).return_value
    eve.transact(attacker, "deposit", 2 * ETHER, value=2 * ETHER)
    before = chain.balance_of(attacker)
    eve.transact(attacker, "withdraw")
    assert chain.balance_of(attacker) - before == 2 * ETHER
    assert chain.read(attacker, "reentry_count") == 0


# --- SimpleToken ------------------------------------------------------------------------------


def test_erc20_mint_transfer_approve_flow(chain, owner, alice, bob):
    token = owner.deploy(SimpleToken, "Test", "TST", 0).return_value
    owner.transact(token, "mint", alice.address, 100)
    assert chain.read(token, "totalSupply") == 100

    alice.transact(token, "transfer", bob.address, 40)
    assert chain.read(token, "balanceOf", alice.address) == 60
    assert chain.read(token, "balanceOf", bob.address) == 40

    alice.transact(token, "approve", bob.address, 25)
    assert chain.read(token, "allowance", alice.address, bob.address) == 25
    bob.transact(token, "transferFrom", alice.address, bob.address, 20)
    assert chain.read(token, "balanceOf", bob.address) == 60
    assert chain.read(token, "allowance", alice.address, bob.address) == 5


def test_erc20_guards(chain, owner, alice, bob):
    token = owner.deploy(SimpleToken).return_value
    assert not alice.transact(token, "mint", alice.address, 10).success  # not the owner
    owner.transact(token, "mint", alice.address, 10)
    assert not alice.transact(token, "transfer", bob.address, 11).success  # overdraft
    assert not bob.transact(token, "transferFrom", alice.address, bob.address, 1).success
    owner.transact(token, "transferOwnership", alice.address)
    assert alice.transact(token, "mint", alice.address, 5).success


# --- on-chain whitelist baseline (§II motivation) ----------------------------------------------------


def test_whitelist_add_remove_and_gating(chain, owner, alice, eve):
    whitelist = owner.deploy(OnChainWhitelist).return_value
    vault = owner.deploy(WhitelistedVault, whitelist.this).return_value

    owner.transact(whitelist, "add", alice.address)
    assert chain.read(whitelist, "is_listed", alice.address)
    assert chain.read(whitelist, "size") == 1

    assert alice.transact(vault, "record", 5).success
    assert not eve.transact(vault, "record", 5).success

    owner.transact(whitelist, "remove", alice.address)
    assert not alice.transact(vault, "record", 5).success
    assert chain.read(whitelist, "size") == 0


def test_whitelist_only_owner_can_manage(chain, owner, eve):
    whitelist = owner.deploy(OnChainWhitelist).return_value
    assert not eve.transact(whitelist, "add", eve.address).success


def test_whitelist_cost_per_address_matches_motivation(chain, owner):
    """§II-B: whitelisting costs tens of thousands of gas per address, which
    at scale is hundreds of dollars -- the motivation for SMACS."""
    whitelist = owner.deploy(OnChainWhitelist).return_value
    receipts = [
        owner.transact(whitelist, "add", KeyPair.from_seed(f"user-{i}").address)
        for i in range(5)
    ]
    per_address = sum(r.gas_used for r in receipts) / len(receipts)
    assert per_address > 40_000
    projected_10k_usd = gas_to_usd(int(per_address * 10_000))
    assert projected_10k_usd > 50  # hundreds of dollars, not cents


def test_whitelist_batch_add(chain, owner):
    whitelist = owner.deploy(OnChainWhitelist).return_value
    users = [KeyPair.from_seed(f"batch-{i}").address for i in range(20)]
    receipt = owner.transact(whitelist, "add_many", users)
    assert receipt.success
    assert receipt.return_value == 20
    assert chain.read(whitelist, "size") == 20
    assert receipt.gas_used > 20 * gas.SSTORE_SET


# --- role-based baseline ---------------------------------------------------------------------------------


def test_role_based_vault_grant_and_revoke(chain, owner, alice, eve):
    vault = owner.deploy(RoleBasedVault).return_value
    assert not alice.transact(vault, "record", 5).success
    owner.transact(vault, "grantRole", "operator", alice.address)
    assert alice.transact(vault, "record", 5).success
    assert chain.read(vault, "total") == 5
    owner.transact(vault, "revokeRole", "operator", alice.address)
    assert not alice.transact(vault, "record", 5).success
    # Only admins manage roles.
    assert not eve.transact(vault, "grantRole", "operator", eve.address).success


# --- token sales: baseline vs SMACS ----------------------------------------------------------------------


def test_onchain_whitelist_token_sale(chain, owner, alice, eve):
    token = owner.deploy(SimpleToken).return_value
    sale = owner.deploy(OnChainWhitelistTokenSale, token.this, 1000).return_value
    owner.transact(token, "transferOwnership", sale.this)

    owner.transact(sale, "whitelist", alice.address)
    assert alice.transact(sale, "buy", value=2 * ETHER).success
    assert chain.read(token, "balanceOf", alice.address) == 2000
    assert chain.read(sale, "raised") == 2 * ETHER
    assert not eve.transact(sale, "buy", value=ETHER).success


def test_smacs_token_sale_moves_whitelist_off_chain(chain, owner, alice, eve, token_service):
    token = owner.deploy(SimpleToken).return_value
    sale = owner.deploy(
        SMACSTokenSale, token.this, ts_address=token_service.address, rate=1000
    ).return_value
    owner.transact(token, "transferOwnership", sale.this)
    token_service.rules.add_rule(WhitelistRule([alice.address]))

    alice_wallet = ClientWallet(alice, {sale.this: token_service})
    receipt = alice_wallet.call_with_token(sale, "buy", token_type=TokenType.METHOD,
                                           value=ETHER)
    assert receipt.success
    assert chain.read(token, "balanceOf", alice.address) == 1000

    # Eve cannot obtain a token, and calling without one fails on-chain.
    from repro.core import TokenDenied

    eve_wallet = ClientWallet(eve, {sale.this: token_service})
    with pytest.raises(TokenDenied):
        eve_wallet.request_token(sale, TokenType.METHOD, "buy")
    assert not eve.transact(sale, "buy", value=ETHER).success


def test_smacs_sale_onchain_policy_storage_is_constant(chain, owner, alice, token_service):
    """The SMACS sale stores no per-user policy data on-chain."""
    token = owner.deploy(SimpleToken).return_value
    sale = owner.deploy(SMACSTokenSale, token.this,
                        ts_address=token_service.address).return_value
    slots_before = chain.state.storage_slot_count(sale.this)
    token_service.rules.add_rule(
        WhitelistRule([KeyPair.from_seed(f"u{i}").address for i in range(500)])
    )
    assert chain.state.storage_slot_count(sale.this) == slots_before
