"""Unit tests for the repro.obs metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histogram_snapshots,
)


# --- counters / gauges --------------------------------------------------------------


def test_counter_only_goes_up():
    counter = Counter("requests")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_levels_and_high_water_mark():
    gauge = Gauge("largest_batch")
    gauge.set(3.0)
    gauge.add(2.0)
    assert gauge.value == 5.0
    gauge.set_max(4.0)  # below the current level: no change
    assert gauge.value == 5.0
    gauge.set_max(9.0)
    assert gauge.value == 9.0


# --- histogram ----------------------------------------------------------------------


def test_histogram_quantiles_land_within_one_bucket():
    hist = Histogram("latency")
    for ms in (1.0, 2.0, 3.0, 4.0, 100.0):
        hist.observe(ms / 1000.0)
    growth = 10.0 ** (1.0 / hist.buckets_per_decade)
    p50 = hist.quantile(0.5)
    assert 0.003 <= p50 <= 0.003 * growth * (1 + 1e-9)
    # p999 of five samples is the max; the estimate clamps to it exactly.
    assert hist.quantile(0.999) == pytest.approx(0.1)


def test_histogram_empty_and_single_sample_edges():
    hist = Histogram("empty")
    assert hist.quantile(0.5) is None  # no data is None, not 0
    assert hist.snapshot()["p99"] is None
    hist.observe(0.004)
    # Single sample: every quantile reports the sample (clamped to max).
    for q in (0.0, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == pytest.approx(0.004)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_underflow_and_overflow():
    hist = Histogram("edges", lower=1e-3, decades=2)  # covers [1ms, 100ms)
    hist.observe(0.0)       # underflow
    hist.observe(5.0)       # overflow
    snap = hist.snapshot()
    assert snap["underflow"] == 1
    assert snap["overflow"] == 1
    assert hist.quantile(0.0) <= 1e-3          # underflow estimates the floor
    assert hist.quantile(1.0) == pytest.approx(5.0)  # overflow estimates the max


def test_histogram_snapshot_is_json_safe_and_sparse():
    hist = Histogram("sparse")
    hist.observe(0.001)
    hist.observe(0.001)
    snap = hist.snapshot()
    json.dumps(snap)  # must serialise without custom encoders
    assert snap["count"] == 2
    assert sum(snap["buckets"].values()) == 2
    assert len(snap["buckets"]) == 1  # only the touched bucket is emitted


def test_histogram_merge_matches_single_stream():
    left, right, single = (Histogram(n) for n in ("l", "r", "s"))
    samples_left = [0.001, 0.002, 0.5]
    samples_right = [0.0001, 0.040, 0.040, 3.0]
    for value in samples_left:
        left.observe(value)
        single.observe(value)
    for value in samples_right:
        right.observe(value)
        single.observe(value)
    left.merge(right)
    merged_snap, single_snap = left.snapshot(), single.snapshot()
    assert merged_snap["buckets"] == single_snap["buckets"]
    assert merged_snap["count"] == single_snap["count"]
    assert merged_snap["p50"] == single_snap["p50"]
    assert merged_snap["sum"] == pytest.approx(single_snap["sum"])


def test_histogram_merge_rejects_mismatched_geometry():
    with pytest.raises(ValueError):
        Histogram("a").merge(Histogram("b", lower=1e-3))
    with pytest.raises(ValueError):
        merge_histogram_snapshots(
            Histogram("a").snapshot(), Histogram("b", decades=3).snapshot()
        )


def test_merge_histogram_snapshots_adds_bucketwise():
    a, b = Histogram("a"), Histogram("b")
    for value in (0.001, 0.010):
        a.observe(value)
    b.observe(0.010)
    merged = merge_histogram_snapshots(a.snapshot(), b.snapshot())
    assert merged["count"] == 3
    assert merged["min"] == 0.001
    assert merged["max"] == 0.010
    assert sum(merged["buckets"].values()) == 3


# --- registry -----------------------------------------------------------------------


def test_registry_get_or_create_and_kind_conflicts():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    assert registry.counter("x") is counter
    with pytest.raises(ValueError):
        registry.gauge("x")  # one name, one meaning
    assert registry.names() == ["x"]
    assert registry.get("missing") is None


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.002)
    snap = registry.snapshot()
    json.dumps(snap)
    assert snap["counters"] == {"c": 3}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1


def test_registry_merge_snapshot_folds_fleet_views():
    worker1, worker2 = MetricsRegistry(), MetricsRegistry()
    worker1.counter("reqs").inc(10)
    worker2.counter("reqs").inc(5)
    worker1.gauge("peak").set(3.0)
    worker2.gauge("peak").set(7.0)
    worker1.histogram("lat").observe(0.001)
    worker2.histogram("lat").observe(0.010)

    combined = MetricsRegistry.merge_snapshots([worker1.snapshot(), worker2.snapshot()])
    assert combined["counters"]["reqs"] == 15
    assert combined["gauges"]["peak"] == 7.0
    assert combined["histograms"]["lat"]["count"] == 2


def test_registry_injectable_clock_is_exposed():
    ticks = iter(range(100))
    registry = MetricsRegistry(now=lambda: float(next(ticks)))
    assert registry.now() == 0.0
    assert registry.now() == 1.0


def test_histogram_observe_is_thread_safe():
    hist = Histogram("contended")

    def pound() -> None:
        for _ in range(2000):
            hist.observe(0.001)

    threads = [threading.Thread(target=pound) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert hist.count == 8000
    assert sum(hist.snapshot()["buckets"].values()) == 8000
