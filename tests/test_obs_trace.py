"""Tracer nesting + trace-context propagation across the real TCP wire.

The wire cells are the interop proof the observability tentpole needs: the
trace context is ONE optional envelope field in both codec lanes, the codec
version is unchanged, and every mixed pairing of traced/untraced peers keeps
working -- an old server ignores the field, an old client simply never sends
it.
"""

from __future__ import annotations

import pytest

from repro.api import ServiceGateway, build_service, codec, connect, serve, unwrap
from repro.core.acr import RuleSet
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair
from repro.obs import Observability, TraceContext, Tracer

ROUTE = "https://ts.obs.example"


def _fake_clock():
    state = {"t": 0.0}

    def now() -> float:
        state["t"] += 0.5
        return state["t"]

    return now


def _request() -> TokenRequest:
    return TokenRequest.method_token(b"\xaa" * 20, b"\xbb" * 20, "submit")


def _gateway(obs: "Observability | None") -> ServiceGateway:
    service = build_service(
        "serial", keypair=KeyPair.from_seed("obs-ts"), rules=RuleSet()
    )
    gateway = ServiceGateway(observability=obs)
    gateway.register(ROUTE, service)
    return gateway


# --- tracer unit behaviour ----------------------------------------------------------


def test_spans_nest_on_the_thread_local_stack():
    tracer = Tracer(now=_fake_clock())
    with tracer.span("outer") as outer:
        assert tracer.current() is outer
        with tracer.span("inner", stage="build") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
            assert inner.tags == {"stage": "build"}
    assert tracer.current() is None
    finished = tracer.finished_spans()
    assert [span.name for span in finished] == ["inner", "outer"]
    assert all(span.duration is not None and span.duration > 0 for span in finished)
    assert tracer.trace(outer.trace_id) == finished


def test_disabled_tracer_is_a_no_op():
    tracer = Tracer(enabled=False)
    with tracer.span("anything") as span:
        assert span is None
    assert tracer.start("x") is None
    assert tracer.finished_spans() == []
    assert tracer.finished_total == 0


def test_span_error_tagging():
    tracer = Tracer(now=_fake_clock())
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    [span] = tracer.finished_spans()
    assert span.tags["error"] == "RuntimeError"
    assert span.end is not None


def test_remote_context_roots_the_server_side_span():
    tracer = Tracer(now=_fake_clock())
    remote = TraceContext(trace_id="t-abc", span_id="s-123")
    with tracer.span("gateway.handle", context=remote) as span:
        assert span.trace_id == "t-abc"
        assert span.parent_id == "s-123"


def test_trace_context_wire_forms_are_lenient():
    context = TraceContext("tid", "sid")
    assert context.to_wire() == {"id": "tid", "span": "sid"}
    assert TraceContext.from_wire(context.to_wire()) == context
    for junk in (None, "x", 7, {}, {"id": "only"}, {"id": 1, "span": 2}, {"id": "", "span": "s"}):
        assert TraceContext.from_wire(junk) is None


# --- envelope field, both lanes -----------------------------------------------------


@pytest.mark.parametrize("lane", codec.CODECS)
def test_trace_field_rides_the_envelope_and_decodes(lane):
    trace = TraceContext("t1", "s1").to_wire()
    raw = codec.encode_request_envelope("submit", ROUTE, {}, codec=lane, trace=trace)
    op, route, body, decoded = codec.decode_request(raw)
    assert (op, route, body) == ("submit", ROUTE, {})
    assert decoded == trace
    # The trace-blind decoder (the pre-observability surface) still works.
    assert codec.decode_request_envelope(raw) == ("submit", ROUTE, {})


@pytest.mark.parametrize("lane", codec.CODECS)
def test_untraced_envelope_bytes_are_unchanged(lane):
    # trace=None must be byte-identical to not passing the parameter at all:
    # the codec version is untouched and old captures stay valid.
    assert codec.encode_request_envelope("stats", ROUTE, {}, codec=lane) == (
        codec.encode_request_envelope("stats", ROUTE, {}, codec=lane, trace=None)
    )
    op, route, body, trace = codec.decode_request(
        codec.encode_request_envelope("stats", ROUTE, {}, codec=lane)
    )
    assert trace is None


# --- round trips over real TCP ------------------------------------------------------


@pytest.mark.parametrize("lane", codec.CODECS)
def test_trace_context_survives_tcp_round_trip(lane):
    """Traced client -> traced server: one trace id spans the wire."""
    server_obs = Observability()
    gateway = _gateway(server_obs)
    with serve(gateway) as server:
        client = connect(server.url, route=ROUTE, wire_codec=lane)
        client.observability = client_obs = Observability()
        try:
            token = unwrap(client.submit([_request()]))[0]
            assert token is not None
        finally:
            client.close()

    [client_span] = [
        s for s in client_obs.tracer.finished_spans() if s.name == "client.submit"
    ]
    server_spans = server_obs.tracer.finished_spans()
    handles = [s for s in server_spans if s.name == "gateway.handle"]
    assert handles, "server never opened a gateway.handle span"
    [handle] = handles
    # The server span adopted the client's trace id and parent span id: the
    # context crossed the wire intact.
    assert handle.trace_id == client_span.trace_id
    assert handle.parent_id == client_span.span_id
    assert handle.tags["op"] == "submit"
    # Stage timers on the server side also populated the registry.
    stages = server_obs.stage_breakdown()
    assert stages["gateway_decode"]["count"] >= 1
    assert stages["issuance"]["count"] >= 1


@pytest.mark.parametrize("lane", codec.CODECS)
def test_traced_client_against_untraced_server(lane):
    """Old servers ignore the trace field: requests succeed unchanged."""
    gateway = _gateway(None)  # no observability handle at all
    with serve(gateway) as server:
        client = connect(server.url, route=ROUTE, wire_codec=lane)
        client.observability = client_obs = Observability()
        try:
            token = unwrap(client.submit([_request()]))[0]
            assert token is not None
        finally:
            client.close()
    # The client still traced its side of the call.
    assert any(
        s.name == "client.submit" for s in client_obs.tracer.finished_spans()
    )


@pytest.mark.parametrize("lane", codec.CODECS)
def test_untraced_client_against_traced_server(lane):
    """Old clients never send the field: the traced server roots its own span."""
    server_obs = Observability()
    gateway = _gateway(server_obs)
    with serve(gateway) as server:
        client = connect(server.url, route=ROUTE, wire_codec=lane)
        try:
            token = unwrap(client.submit([_request()]))[0]
            assert token is not None
        finally:
            client.close()
    [handle] = [
        s for s in server_obs.tracer.finished_spans() if s.name == "gateway.handle"
    ]
    assert handle.parent_id is None  # no remote context: a fresh root span


def test_malformed_trace_field_never_fails_the_request():
    """A garbage trace value loses its telemetry, not the request."""
    server_obs = Observability()
    gateway = _gateway(server_obs)
    raw = codec.encode_request_envelope(
        "submit",
        ROUTE,
        {"requests": [codec.encode_token_request(_request())]},
        trace={"bogus": True},
    )
    response = codec.decode_response_envelope(gateway.handle(raw))
    assert response["results"][0]["token"] is not None
    [handle] = [
        s for s in server_obs.tracer.finished_spans() if s.name == "gateway.handle"
    ]
    assert handle.parent_id is None  # degraded to a root span


def test_metrics_route_over_tcp_reports_the_snapshot():
    server_obs = Observability()
    gateway = _gateway(server_obs)
    with serve(gateway) as server:
        client = connect(server.url, route=ROUTE)
        try:
            client.submit([_request()])
            snapshot = client.metrics()
        finally:
            client.close()
    assert snapshot["enabled"] is True
    assert snapshot["metrics"]["histograms"]["stage.issuance"]["count"] == 1
    assert snapshot["stages"]["gateway_decode"]["count"] >= 1


def test_metrics_route_without_observability_reports_disabled():
    gateway = _gateway(None)
    client = gateway.client_for(ROUTE)
    assert client.metrics() == {"enabled": False}
