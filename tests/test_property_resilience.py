"""Property-based tests (hypothesis) for the resilience state machines.

The two guarantees the wire fleet leans on:

1. **A circuit breaker never wedges.**  Whatever interleaving of successes,
   failures and clock ticks a breaker has seen, once the endpoint is healthy
   again (the reset timeout passes and probes succeed) the breaker closes
   and admits traffic.  An unrecoverable breaker would silently remove an
   endpoint from the pool forever.
2. **Half-open admits exactly the probe quota.**  After the reset timeout a
   tripped breaker lets through ``half_open_probes`` requests and not one
   more until a probe outcome is recorded -- the recovering server gets a
   trickle, not the thundering herd that knocked it over.

Plus the deadline arithmetic the timeouts ride on: remaining budget is
monotonically non-increasing as the clock advances and is never negative
(every value is a legal socket timeout), and ``check_deadline`` fires
exactly when the clock reaches the absolute deadline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ErrorCode, SmacsError
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    CircuitBreaker,
    check_deadline,
    deadline_in,
    remaining,
)

pytestmark = pytest.mark.slow  # hypothesis-heavy: the CI slow lane

breaker_ops = st.lists(
    st.sampled_from(["success", "failure", "tick"]), min_size=0, max_size=60
)


@given(
    ops=breaker_ops,
    threshold=st.integers(min_value=1, max_value=5),
    probes=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=200, deadline=None)
def test_breaker_never_wedges_open_against_a_healthy_endpoint(ops, threshold, probes):
    """Liveness: any history + (timeout elapses, probes succeed) => closed."""
    clock = {"t": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        reset_timeout=1.0,
        half_open_probes=probes,
        now=lambda: clock["t"],
    )
    for op in ops:
        if op == "success":
            breaker.record_success()
        elif op == "failure":
            breaker.record_failure()
        else:
            clock["t"] += 0.4
    # The endpoint recovers: the reset timeout passes (with margin -- the
    # 0.4 ticks accumulate float dust) and probes succeed.
    clock["t"] += 1.5
    if not breaker.allow():
        # Only legitimate refusal now: the probe quota is already in flight
        # from the history above -- and a healthy endpoint answers probes.
        assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


@given(
    threshold=st.integers(min_value=1, max_value=4),
    probes=st.integers(min_value=1, max_value=5),
    extra_attempts=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=200, deadline=None)
def test_half_open_admits_exactly_the_probe_quota(threshold, probes, extra_attempts):
    clock = {"t": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        reset_timeout=1.0,
        half_open_probes=probes,
        now=lambda: clock["t"],
    )
    for _ in range(threshold):
        breaker.record_failure()
    assert not breaker.allow()  # open: refused without touching the wire
    clock["t"] += 1.0
    attempts = [breaker.allow() for _ in range(probes + extra_attempts)]
    assert attempts[:probes] == [True] * probes
    assert not any(attempts[probes:])
    # A failed probe re-opens and the reset timer starts over: still no
    # admission until another full timeout elapses.
    breaker.record_failure()
    assert not breaker.allow()
    clock["t"] += 0.5
    assert not breaker.allow()
    clock["t"] += 0.5
    assert breaker.allow()


@given(
    ops=breaker_ops,
    threshold=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=200, deadline=None)
def test_closed_breaker_trips_only_at_the_consecutive_failure_threshold(ops, threshold):
    """Model check: the closed->open transition matches a streak counter."""
    clock = {"t": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout=1e9, now=lambda: clock["t"]
    )
    streak = 0
    tripped = False
    for op in ops:
        if op == "success":
            breaker.record_success()
            if not tripped:
                streak = 0
        elif op == "failure":
            breaker.record_failure()
            if not tripped:
                streak += 1
                if streak >= threshold:
                    tripped = True
        else:
            clock["t"] += 0.1  # far below the reset timeout: state is stable
        expected = "open" if tripped else BREAKER_CLOSED
        # Once tripped with an effectively infinite reset timeout the breaker
        # must stay open no matter what outcomes straggler requests report --
        # except an explicit success, which closes it by design.
        if tripped and op == "success":
            tripped = False
            streak = 0
            expected = BREAKER_CLOSED
        assert (breaker.state == BREAKER_CLOSED) == (expected == BREAKER_CLOSED)


# --- deadline arithmetic ------------------------------------------------------------

clocks = st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)


@given(deadline=clocks, times=st.lists(clocks, min_size=1, max_size=20))
@settings(max_examples=300, deadline=None)
def test_remaining_budget_is_monotone_and_never_negative(deadline, times):
    budgets = [remaining(deadline, now=lambda t=t: t) for t in sorted(times)]
    assert all(budget >= 0.0 for budget in budgets)  # always a legal timeout
    assert all(a >= b for a, b in zip(budgets, budgets[1:]))  # hops never gain


@given(
    budget=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    start=clocks,
    at=clocks,
)
@settings(max_examples=300, deadline=None)
def test_check_deadline_fires_exactly_at_the_absolute_deadline(budget, start, at):
    deadline = deadline_in(budget, now=lambda: start)
    assert deadline >= start  # a positive budget never points into the past
    if at >= deadline:
        with pytest.raises(SmacsError) as failure:
            check_deadline(deadline, stage="prop", now=lambda: at)
        assert failure.value.code is ErrorCode.DEADLINE_EXCEEDED
        assert remaining(deadline, now=lambda: at) == 0.0
    else:
        check_deadline(deadline, stage="prop", now=lambda: at)
        assert remaining(deadline, now=lambda: at) > 0.0
