"""Differential tests: the curve-math fast path vs the naive reference.

The wNAF/Shamir/GLV/batch machinery in ``repro.crypto.secp256k1`` and
``repro.crypto.ecdsa`` must agree with the naive double-and-add reference
implementation on every input.  Deterministic edge cases (identity, scalars
congruent to 0 mod N, both y parities, r near N) run in the fast lane;
hypothesis sweeps over random scalars run in the slow lane.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import secp256k1
from repro.crypto.ecdsa import (
    Signature,
    SignatureError,
    recover,
    recover_batch,
    recover_reference,
    sign,
)
from repro.crypto.keccak import keccak256
from repro.crypto.keys import KeyPair, recover_address, recover_address_batch
from repro.crypto.secp256k1 import (
    GENERATOR,
    INFINITY,
    LAMBDA,
    N,
    P,
    Point,
    _glv_split,
    _jacobian_multiply,
    _jacobian_multiply_wnaf,
    _to_jacobian,
    _wnaf,
    batch_inverse,
    generator_multiply,
    jacobian_to_affine_batch,
    lift_x,
    point_add,
    point_multiply,
    point_multiply_reference,
    shamir_multiply,
)

_KEYPAIR = KeyPair.from_seed("fastpath-differential-key")
_OTHER = KeyPair.from_seed("fastpath-differential-other")

scalars = st.integers(min_value=0, max_value=2 * N)
small_scalars = st.integers(min_value=0, max_value=1 << 20)


def _naive_multiply(point: Point, scalar: int) -> Point:
    return secp256k1._from_jacobian_checked(
        _jacobian_multiply(_to_jacobian(point), scalar)
    )


# --- deterministic edge cases (fast lane) ----------------------------------


@pytest.mark.parametrize("scalar", [0, 1, 2, 3, N - 1, N, N + 1, 2 * N, N >> 1])
def test_generator_multiply_edge_scalars(scalar):
    assert generator_multiply(scalar) == _naive_multiply(GENERATOR, scalar)


@pytest.mark.parametrize("scalar", [0, 1, 2, N - 1, N, N + 1, 2 * N])
def test_wnaf_multiply_edge_scalars(scalar):
    point = _naive_multiply(GENERATOR, 0xC0FFEE)
    assert point_multiply(point, scalar) == _naive_multiply(point, scalar)


def test_point_multiply_identity_point():
    assert point_multiply(INFINITY, 12345).is_infinity()
    assert point_multiply_reference(INFINITY, 12345).is_infinity()


def test_scalar_zero_mod_n_gives_identity():
    point = _naive_multiply(GENERATOR, 7)
    assert point_multiply(point, N).is_infinity()
    assert shamir_multiply(N, N, point).is_infinity()
    assert shamir_multiply(0, 0, point).is_infinity()


@pytest.mark.parametrize("u1,u2", [(0, 5), (5, 0), (N, 5), (5, N), (1, 1)])
def test_shamir_degenerate_scalars(u1, u2):
    point = _naive_multiply(GENERATOR, 0xDEADBEEF)
    expected = point_add(
        _naive_multiply(GENERATOR, u1), _naive_multiply(point, u2)
    )
    assert shamir_multiply(u1, u2, point) == expected


def test_shamir_with_identity_second_point():
    assert shamir_multiply(42, 99, INFINITY) == _naive_multiply(GENERATOR, 42)


def test_lift_x_parity_both_ways_roundtrip():
    for seed in (5, 6, 7):
        point = _naive_multiply(GENERATOR, seed)
        for parity in (True, False):
            lifted = lift_x(point.x, parity)
            assert lifted.x == point.x
            assert (lifted.y & 1 == 1) == parity
            assert secp256k1.is_on_curve(lifted.x, lifted.y)


def test_recover_r_near_n_is_consistent_across_paths():
    """r values just below N: fast, batch and reference must all agree
    (recover the same point or all fail)."""
    digest = keccak256(b"r-near-n")
    for r in (N - 1, N - 2, N - 3, N - 4):
        for v in (0, 1):
            signature = Signature(r, 12345, v)
            try:
                expected = recover_reference(digest, signature)
            except SignatureError:
                expected = None
            try:
                fast = recover(digest, signature)
            except SignatureError:
                fast = None
            assert fast == expected
            assert recover_batch([(digest, signature)]) == [expected]


def test_batch_mixed_good_bad_and_duplicate_entries():
    digest = keccak256(b"batch-mixed")
    good = _KEYPAIR.sign(digest)
    other = _OTHER.sign(digest)
    bad = Signature(12345, 67890, 1)
    results = recover_batch(
        [(digest, good), (digest, bad), (digest, other), (digest, good)]
    )
    assert results[0] == _KEYPAIR.public.point
    assert results[1] is None or results[1] != _KEYPAIR.public.point
    assert results[2] == _OTHER.public.point
    assert results[3] == _KEYPAIR.public.point


def test_batch_empty_and_malformed_digest():
    assert recover_batch([]) == []
    # A wrong-length digest raises on the single path but yields None in a
    # batch (one bad entry must not poison the block).
    signature = _KEYPAIR.sign(keccak256(b"ok"))
    with pytest.raises(SignatureError):
        recover(b"short", signature)
    assert recover_batch([(b"short", signature)]) == [None]


def test_recover_address_batch_matches_singles():
    digests = [keccak256(b"addr-%d" % i) for i in range(5)]
    pairs = [(d, _KEYPAIR.sign(d)) for d in digests]
    assert recover_address_batch(pairs) == [
        recover_address(d, s) for d, s in pairs
    ]


def test_batch_inverse_matches_pow():
    values = [1, 2, 3, P - 1, 0xDEADBEEF, N % P]
    assert batch_inverse(values, P) == [pow(v, -1, P) for v in values]
    assert batch_inverse([], P) == []


def test_jacobian_to_affine_batch_handles_infinity():
    jacs = [
        _to_jacobian(_naive_multiply(GENERATOR, 9)),
        secp256k1._J_INFINITY,
        secp256k1._jacobian_double(_to_jacobian(GENERATOR)),
    ]
    points = jacobian_to_affine_batch(jacs)
    assert points[0] == _naive_multiply(GENERATOR, 9)
    assert points[1].is_infinity()
    assert points[2] == _naive_multiply(GENERATOR, 2)


def test_glv_split_known_edge_scalars():
    for k in (0, 1, 2, N - 1, N >> 1, LAMBDA, N - LAMBDA):
        k1, k2 = _glv_split(k % N)
        assert (k1 + k2 * LAMBDA) % N == k % N
        assert abs(k1).bit_length() <= 129
        assert abs(k2).bit_length() <= 129


def test_endomorphism_matches_lambda_multiplication():
    point = _naive_multiply(GENERATOR, 0xBADC0DE)
    mapped = secp256k1.apply_endomorphism([(point.x, point.y)])[0]
    expected = _naive_multiply(point, LAMBDA)
    assert mapped == (expected.x, expected.y)


# --- hypothesis sweeps (slow lane) -----------------------------------------


@pytest.mark.slow
@given(scalar=scalars, width=st.integers(min_value=2, max_value=8))
@settings(max_examples=150, deadline=None)
def test_wnaf_digits_reconstruct_scalar(scalar, width):
    digits = _wnaf(scalar, width)
    assert sum(d << i for i, d in enumerate(digits)) == scalar
    half = 1 << (width - 1)
    for d in digits:
        assert d == 0 or (d % 2 == 1 and -half < d < half)
    if digits:
        assert digits[-1] != 0  # no redundant leading zeros


@pytest.mark.slow
@given(scalar=st.one_of(scalars, small_scalars))
@settings(max_examples=30, deadline=None)
def test_generator_multiply_matches_naive(scalar):
    assert generator_multiply(scalar) == _naive_multiply(GENERATOR, scalar)


@pytest.mark.slow
@given(base=small_scalars.filter(lambda s: s > 0), scalar=scalars)
@settings(max_examples=25, deadline=None)
def test_wnaf_multiply_matches_naive(base, scalar):
    point = _naive_multiply(GENERATOR, base)
    fast = secp256k1._from_jacobian(
        _jacobian_multiply_wnaf(_to_jacobian(point), scalar)
    )
    assert fast == _naive_multiply(point, scalar)


@pytest.mark.slow
@given(u1=scalars, u2=scalars, base=small_scalars.filter(lambda s: s > 0))
@settings(max_examples=25, deadline=None)
def test_shamir_matches_naive_composition(u1, u2, base):
    point = _naive_multiply(GENERATOR, base)
    expected = point_add(
        _naive_multiply(GENERATOR, u1), _naive_multiply(point, u2)
    )
    assert shamir_multiply(u1, u2, point) == expected


@pytest.mark.slow
@given(scalar=st.integers(min_value=0, max_value=N - 1))
@settings(max_examples=150, deadline=None)
def test_glv_split_reconstructs_scalar(scalar):
    k1, k2 = _glv_split(scalar)
    assert (k1 + k2 * LAMBDA) % N == scalar
    assert abs(k1).bit_length() <= 129
    assert abs(k2).bit_length() <= 129


@pytest.mark.slow
@given(u1=scalars, u2=scalars, base=small_scalars.filter(lambda s: s > 0))
@settings(max_examples=20, deadline=None)
def test_glv_kernel_matches_naive_composition(u1, u2, base):
    point = _naive_multiply(GENERATOR, base)
    tables = secp256k1.affine_odd_multiples_batch([point])
    fast = secp256k1._from_jacobian(
        secp256k1._jacobian_shamir_glv(u1, u2, tables[0])
    )
    expected = point_add(
        _naive_multiply(GENERATOR, u1), _naive_multiply(point, u2)
    )
    assert fast == expected


@pytest.mark.slow
@given(seed=st.binary(min_size=1, max_size=16))
@settings(max_examples=15, deadline=None)
def test_recover_paths_agree_on_valid_signatures(seed):
    digest = keccak256(seed)
    keypair = KeyPair.from_seed(seed)
    signature = sign(digest, keypair.private.secret)
    fast = recover(digest, signature)
    assert fast == recover_reference(digest, signature)
    assert fast == keypair.public.point
    assert recover_batch([(digest, signature)]) == [fast]


@pytest.mark.slow
@given(
    r=st.integers(min_value=1, max_value=N - 1),
    s=st.integers(min_value=1, max_value=N - 1),
    v=st.integers(min_value=0, max_value=1),
    seed=st.binary(min_size=0, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_recover_paths_agree_on_arbitrary_signatures(r, s, v, seed):
    """Forged/garbage signatures: all three paths agree (same point or all
    unrecoverable)."""
    digest = keccak256(seed)
    signature = Signature(r, s, v)
    try:
        expected = recover_reference(digest, signature)
    except SignatureError:
        expected = None
    try:
        fast = recover(digest, signature)
    except SignatureError:
        fast = None
    assert fast == expected
    assert recover_batch([(digest, signature)]) == [expected]


@pytest.mark.slow
@given(values=st.lists(st.integers(min_value=1, max_value=P - 1), max_size=20))
@settings(max_examples=100, deadline=None)
def test_batch_inverse_matches_pow_random(values):
    assert batch_inverse(values, P) == [pow(v, -1, P) for v in values]
