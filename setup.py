"""Legacy setup shim for offline environments without the ``wheel`` package.

``pip install -e .`` uses PEP 517 and needs ``wheel``; on fully offline
machines ``python setup.py develop`` (or adding ``src/`` to a ``.pth`` file)
achieves the same editable install using only setuptools.
"""

from setuptools import setup

setup()
