#!/usr/bin/env python3
"""Hydra uniformity as a SMACS rule (§V-A).

Three independently written heads of the same accumulator logic run on the
Token Service's private testnet (one head carries a 16-bit truncation bug).
Argument tokens are issued only for payloads on which every head agrees, so
divergence-triggering payloads never reach the chain -- and the chain never
pays the N-fold execution cost of on-chain Hydra.

Run with:  python examples/hydra_uniformity.py
"""

from repro.chain import Blockchain
from repro.core import (
    ClientWallet,
    OwnerWallet,
    TokenDenied,
    TokenService,
    TokenType,
)
from repro.core.acr import RuntimeVerificationRule
from repro.crypto.keys import KeyPair
from repro.verification import HydraCoordinator, HydraUniformityRule
from repro.verification.hydra import (
    AccumulatorHeadA,
    AccumulatorHeadB,
    AccumulatorHeadC,
)


def main() -> None:
    chain = Blockchain()
    owner = chain.create_account("owner", seed="hydra-owner")
    client = chain.create_account("client", seed="hydra-client")

    # The production contract is head A; the TS runs all three heads off-chain.
    coordinator = HydraCoordinator(
        head_classes=(AccumulatorHeadA, AccumulatorHeadB, AccumulatorHeadC),
        constructor_args=[{}, {}, {"buggy": True}],
    )
    print(f"Hydra coordinator running {coordinator.head_count} heads on a private testnet")

    service = TokenService(keypair=KeyPair.from_seed("hydra-ts"), clock=chain.clock)
    production = owner.deploy(AccumulatorHeadA).return_value
    # Make the production contract SMACS-enabled via the adoption tool.
    from repro.core import make_smacs_enabled

    ProtectedAccumulator = make_smacs_enabled(AccumulatorHeadA, name="ProtectedAccumulator")
    protected = OwnerWallet(owner, service).deploy_protected(ProtectedAccumulator).return_value
    service.rules.add_rule(
        RuntimeVerificationRule(HydraUniformityRule(coordinator, protected)),
        TokenType.ARGUMENT,
    )
    print(f"protected accumulator deployed at {protected.address_hex}")

    wallet = ClientWallet(client, {protected.this: service})

    # A benign payload: all heads agree, the token is issued, the call runs.
    receipt = wallet.call_with_token(protected, "add", amount=1200,
                                     token_type=TokenType.ARGUMENT)
    print(f"add(1200): all heads agree -> token issued, call success={receipt.success}, "
          f"total={chain.read(protected, 'total')}")

    # A payload that makes the buggy head diverge: no token, nothing on-chain.
    try:
        wallet.call_with_token(protected, "add", amount=70_000,
                               token_type=TokenType.ARGUMENT)
        print("add(70000): ERROR, the divergent payload was allowed")
    except TokenDenied as denied:
        print(f"add(70000): heads diverged -> token denied ({denied})")
    print(f"on-chain state untouched by the divergent payload: "
          f"total={chain.read(protected, 'total')}")

    # The unprotected twin would have accepted the same payload silently.
    owner.transact(production, "add", 70_000)
    print(f"unprotected twin happily accepted it: total={chain.read(production, 'total')}")


if __name__ == "__main__":
    main()
