#!/usr/bin/env python3
"""Token Service availability (§VII-B): replication with a Raft counter.

A single TS is a single point of failure.  This example runs three TS
replicas that share the signing key and rules; their one-time counter is
coordinated through a Raft cluster, so indexes stay globally unique even
while replicas crash and recover, and clients keep being served as long as
one web front end is up.

Run with:  python examples/replicated_token_service.py
"""

from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import ClientWallet, TokenType
from repro.core.replication import ReplicatedTokenService
from repro.crypto.keys import KeyPair


def main() -> None:
    chain = Blockchain()
    owner = chain.create_account("owner", seed="repl-owner")
    client = chain.create_account("client", seed="repl-client")

    service = ReplicatedTokenService(
        replica_count=3,
        keypair=KeyPair.from_seed("replicated-ts"),
        clock=chain.clock,
        seed=2020,
    )
    print(f"3 TS replicas online, shared pkTS address {'0x' + service.address.hex()}")

    recorder = owner.deploy(ProtectedRecorder, ts_address=service.address,
                            one_time_bitmap_bits=4096).return_value
    wallet = ClientWallet(client, {recorder.this: service})

    # Normal operation: requests are spread over the replicas round-robin.
    indexes = []
    for i in range(4):
        token = wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
        indexes.append(token.index)
        receipt = client.transact(recorder, "submit", i + 1, token=token.to_bytes())
        assert receipt.success
    print(f"issued one-time indexes (round-robin over replicas): {indexes}")
    print(f"per-replica issuance counts: "
          f"{[replica.issued_count for replica in service.replicas]}")

    # Two replicas go down; the survivor keeps issuing unique indexes.
    service.take_down(0)
    service.take_down(1)
    raft_casualty = service.counter_cluster.crash_leader()
    print(f"replicas 0 and 1 down, Raft leader {raft_casualty} crashed")

    token = wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
    receipt = client.transact(recorder, "submit", 99, token=token.to_bytes())
    print(f"survivor replica issued index {token.index}; call success={receipt.success}")

    # Recovery: everything comes back and the counter is still consistent.
    service.bring_up(0)
    service.bring_up(1)
    service.counter_cluster.restart(raft_casualty)
    token = wallet.request_token(recorder, TokenType.METHOD, "submit", one_time=True)
    print(f"after recovery, next index is {token.index} "
          f"(unique and monotone across the outage)")
    print(f"replicas agree on the committed counter: {service.issued_indexes_are_unique()}")
    print(f"contract processed {chain.read(recorder, 'entries')} one-time calls in total")


if __name__ == "__main__":
    main()
