#!/usr/bin/env python3
"""Token-sale scenario (§II-D): on-chain whitelist baseline vs SMACS.

Token sales like Bluzelle's paid thousands of dollars just to whitelist
buyers on-chain.  This example runs both designs side by side:

* the baseline sale keeps the whitelist in contract storage (one transaction
  and one storage slot per buyer);
* the SMACS sale keeps the same policy in the Token Service, so enrolling a
  buyer is free and invisible on-chain, while each purchase carries a cheap
  token verification.

Run with:  python examples/token_sale_whitelist.py
"""

from repro.chain import Blockchain
from repro.contracts import OnChainWhitelistTokenSale, SMACSTokenSale, SimpleToken
from repro.core import ClientWallet, TokenDenied, TokenService, TokenType, gas_to_usd
from repro.core.acr import WhitelistRule
from repro.crypto.keys import KeyPair

ETHER = 10**18
BUYERS = 25


def main() -> None:
    chain = Blockchain()
    issuer = chain.create_account("issuer", seed="sale-issuer")
    buyers = [chain.create_account(f"buyer-{i}", seed=f"sale-buyer-{i}")
              for i in range(BUYERS)]
    outsider = chain.create_account("outsider", seed="sale-outsider")

    # --- baseline: on-chain whitelist ------------------------------------------
    baseline_token = issuer.deploy(SimpleToken, "Baseline", "BASE").return_value
    baseline_sale = issuer.deploy(OnChainWhitelistTokenSale,
                                  baseline_token.this).return_value
    issuer.transact(baseline_token, "transferOwnership", baseline_sale.this)

    whitelist_gas = 0
    for buyer in buyers:
        receipt = issuer.transact(baseline_sale, "whitelist", buyer.address)
        whitelist_gas += receipt.gas_used
    print(f"[baseline] whitelisting {BUYERS} buyers on-chain: {whitelist_gas:,} gas "
          f"(≈${gas_to_usd(whitelist_gas):.2f}); "
          f"projected for 10,000 buyers ≈ ${gas_to_usd(whitelist_gas * 10_000 // BUYERS):.0f}")

    buy = buyers[0].transact(baseline_sale, "buy", value=1 * ETHER)
    print(f"[baseline] purchase gas: {buy.gas_used:,}")
    blocked = outsider.transact(baseline_sale, "buy", value=1 * ETHER)
    print(f"[baseline] outsider blocked on-chain: {not blocked.success}")

    # --- SMACS: the whitelist lives in the Token Service ------------------------
    service = TokenService(keypair=KeyPair.from_seed("sale-ts"), clock=chain.clock)
    service.rules.add_rule(
        WhitelistRule([b.address for b in buyers], name="kyc-approved")
    )
    smacs_token = issuer.deploy(SimpleToken, "SMACS", "SMK").return_value
    smacs_sale = issuer.deploy(SMACSTokenSale, smacs_token.this,
                               ts_address=service.address).return_value
    issuer.transact(smacs_token, "transferOwnership", smacs_sale.this)
    print(f"[smacs]    enrolling {BUYERS} buyers: 0 gas (pure off-chain rule update)")

    purchase_gas = []
    for buyer in buyers[:5]:
        wallet = ClientWallet(buyer, {smacs_sale.this: service})
        receipt = wallet.call_with_token(smacs_sale, "buy", token_type=TokenType.METHOD,
                                         value=1 * ETHER)
        purchase_gas.append(receipt.gas_used)
    print(f"[smacs]    purchase gas (incl. token verification): "
          f"{sum(purchase_gas) // len(purchase_gas):,} per buy")

    outsider_wallet = ClientWallet(outsider, {smacs_sale.this: service})
    try:
        outsider_wallet.request_token(smacs_sale, TokenType.METHOD, "buy")
    except TokenDenied as denied:
        print(f"[smacs]    outsider denied a token off-chain: {denied}")

    print(f"[smacs]    tokens minted so far: {chain.read(smacs_token, 'totalSupply')}")
    print(f"[smacs]    the sale contract stores no per-buyer policy data "
          f"({chain.state.storage_slot_count(smacs_sale.this)} storage slots total)")


if __name__ == "__main__":
    main()
