#!/usr/bin/env python3
"""The TheDAO case study (§V-B): protecting a vulnerable Bank after deployment.

The script shows four configurations of the same vulnerable contract:

1. the plain ``Bank`` of Fig. 7 being drained by the re-entrancy attack;
2. ECFChecker flagging the exploiting call in an off-chain simulation;
3. a SMACS-enabled Bank whose Token Service runs the ECFChecker rule -- the
   attacker never obtains a token, innocent users keep withdrawing;
4. the one-time-token defence: even without the ECF rule, a one-time token is
   consumed by the first (outer) call, so the re-entrant inner call fails.

Run with:  python examples/reentrancy_protection.py
"""

from repro.chain import Blockchain
from repro.contracts import Attacker, Bank, SMACSAttacker, SMACSBank
from repro.core import ClientWallet, TokenDenied, TokenService, TokenType
from repro.core.acr import RuntimeVerificationRule
from repro.crypto.keys import KeyPair
from repro.verification import ECFChecker, ECFTokenRule, LocalTestnet

ETHER = 10**18


def eth(wei: int) -> str:
    return f"{wei / ETHER:.1f} ETH"


def main() -> None:
    chain = Blockchain()
    owner = chain.create_account("owner", seed="dao-owner")
    victim = chain.create_account("victim", seed="dao-victim")
    attacker = chain.create_account("attacker", seed="dao-attacker")

    # --- 1. the unprotected Bank gets drained -----------------------------------
    bank = owner.deploy(Bank).return_value
    victim.transact(bank, "addBalance", value=10 * ETHER)
    exploit = attacker.deploy(Attacker, bank.this, True).return_value
    attacker.transact(exploit, "deposit", 2 * ETHER, value=2 * ETHER)

    # ... but first, let the Token Service's checker look at the pending call.
    testnet = LocalTestnet(fork_of=chain)
    report = ECFChecker().check_simulation(
        testnet.simulate(sender=exploit.this, contract=bank, method="withdraw")
    )
    print("[2] ECFChecker verdict on the attack payload (off-chain simulation):")
    for violation in report.violations:
        print(f"    - {violation.describe()}")

    before = chain.balance_of(exploit)
    attacker.transact(exploit, "withdraw")
    print(f"[1] plain Bank: attacker deposited 2 ETH and withdrew "
          f"{eth(chain.balance_of(exploit) - before)} (victim funds lost)")

    # --- 3. SMACS + ECFChecker rule: the token is never issued -------------------
    service = TokenService(keypair=KeyPair.from_seed("dao-ts"), clock=chain.clock)
    protected_bank = owner.deploy(SMACSBank, ts_address=service.address).return_value
    service.rules.add_rule(
        RuntimeVerificationRule(ECFTokenRule(chain, protected_bank)), None
    )

    victim_wallet = ClientWallet(victim, {protected_bank.this: service})
    victim_wallet.call_with_token(protected_bank, "addBalance",
                                  token_type=TokenType.METHOD, value=10 * ETHER)

    smacs_exploit = attacker.deploy(SMACSAttacker, protected_bank.this, True).return_value
    attacker_wallet = ClientWallet(attacker, {protected_bank.this: service})
    deposit_token = attacker_wallet.request_token(protected_bank, TokenType.METHOD,
                                                  "addBalance")
    attacker.transact(smacs_exploit, "deposit", 2 * ETHER, deposit_token.to_bytes(),
                      value=2 * ETHER)
    try:
        attacker_wallet.request_token(protected_bank, TokenType.METHOD, "withdraw")
        print("[3] ERROR: the attacker obtained a withdraw token")
    except TokenDenied as denied:
        print(f"[3] SMACS + ECF rule: withdraw token denied -> {denied}")

    receipt = victim_wallet.call_with_token(protected_bank, "withdraw",
                                            token_type=TokenType.METHOD)
    print(f"    the honest victim still withdraws normally: success={receipt.success}")

    # --- 4. one-time tokens also stop the re-entrancy ----------------------------
    plain_service = TokenService(keypair=KeyPair.from_seed("dao-ts-2"), clock=chain.clock)
    bank2 = owner.deploy(SMACSBank, ts_address=plain_service.address,
                         one_time_bitmap_bits=1024).return_value
    ClientWallet(victim, {bank2.this: plain_service}).call_with_token(
        bank2, "addBalance", token_type=TokenType.METHOD, value=10 * ETHER
    )
    exploit2 = attacker.deploy(SMACSAttacker, bank2.this, True).return_value
    wallet2 = ClientWallet(attacker, {bank2.this: plain_service})
    deposit_token = wallet2.request_token(bank2, TokenType.METHOD, "addBalance")
    attacker.transact(exploit2, "deposit", 2 * ETHER, deposit_token.to_bytes(),
                      value=2 * ETHER)
    withdraw_token = wallet2.request_token(bank2, TokenType.METHOD, "withdraw",
                                           one_time=True)
    attack = attacker.transact(exploit2, "withdraw", withdraw_token.to_bytes())
    print(f"[4] one-time token defence: attack transaction success={attack.success} "
          f"(the re-entrant call reused a consumed index and the whole call reverted)")
    print(f"    victim balance still intact: "
          f"{eth(chain.read(bank2, 'balanceOf', victim.address))}")


if __name__ == "__main__":
    main()
