#!/usr/bin/env python3
"""The unified issuance API: one protocol, composable stacks, a wire gateway.

The script tours ``repro.api``, the PR-4 layer that turns the three divergent
issuer classes into one surface:

1. ``build_service(profile=...)`` assembles serial / sharded / replicated
   issuance stacks from one factory -- all satisfying the ``TokenIssuer``
   protocol, so the calling code never changes;
2. cross-cutting concerns (metrics, audit, rate limiting, fail-over retries)
   are middleware layers, not forked classes;
3. a ``ServiceGateway`` exposes any stack behind versioned wire envelopes;
   the ``GatewayClient`` speaks the same protocol back, so wallets work
   unchanged across the wire;
4. failures carry stable error codes (``DENIED``, ``RATE_LIMITED``,
   ``COUNTER_TIMEOUT``, ...) inside the results -- batch submissions never
   abort mid-batch;
5. rule updates flow through the protocol, and over the wire they are
   epoch-guarded read-modify-write;
6. the same gateway goes onto *real* sockets with ``serve``/``connect``:
   an asyncio TCP server with length-prefixed frames, and a pooled client
   transport negotiating the compact binary codec lane per envelope.

Run with:  python examples/gateway_quickstart.py
"""

from repro.api import (
    CODEC_BINARY,
    ErrorCode,
    ServiceGateway,
    build_service,
    connect,
    serve,
    unwrap,
)
from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import ClientWallet, OwnerWallet, TokenType
from repro.core.acr import WhitelistRule
from repro.core.token_request import TokenRequest
from repro.crypto.keys import KeyPair

TS_URL = "https://ts.gateway.example"


def main() -> None:
    chain = Blockchain()
    owner = chain.create_account("owner", seed="gw-owner")
    alice = chain.create_account("alice", seed="gw-alice")
    eve = chain.create_account("eve", seed="gw-eve")

    # --- 1. one factory, three deployment shapes ------------------------------
    keypair = KeyPair.from_seed("gw-ts")
    for profile in ("serial", "sharded", "replicated"):
        stack = build_service(profile, keypair=keypair, clock=chain.clock)
        print(f"build_service({profile!r:12}) -> {type(stack).__name__:16} "
              f"base={type(unwrap(stack)).__name__}")

    # --- 2. a replicated stack with metrics + rate limiting layered on --------
    service = build_service(
        "replicated",
        keypair=keypair,
        clock=chain.clock,
        replica_count=3,
        rate_limit=(50, 64),   # 50 tokens/s, bursts of 64
        metrics=True,
    )
    service.update_rules(lambda rules: rules.add_rule(
        WhitelistRule([alice.address], name="partners")
    ))

    # --- 3. publish it behind the gateway, talk to it over the wire ----------
    gateway = ServiceGateway()
    gateway.register(TS_URL, service)
    client = gateway.client_for(TS_URL)
    print(f"\ngateway routes: {client.describe()['routes']}")
    print(f"pkTS over the wire: {client.address_hex}")

    recorder = OwnerWallet(owner, client).deploy_protected(
        ProtectedRecorder, one_time_bitmap_bits=1024, ts_url=TS_URL
    ).return_value

    # The wallet only sees the TokenIssuer protocol -- the wire is invisible.
    wallet = ClientWallet(alice, {recorder.this: client})
    receipt = wallet.call_with_token(recorder, "submit", amount=42,
                                     token_type=TokenType.METHOD, one_time=True)
    print(f"alice.submit(42) through the gateway: success={receipt.success}, "
          f"gas={receipt.gas_used:,}")

    # --- 4. batch submissions carry errors, they never raise mid-batch --------
    batch = [
        TokenRequest.method_token(recorder.this, alice.address, "submit"),
        TokenRequest.method_token(recorder.this, eve.address, "submit"),
        TokenRequest.method_token(recorder.this, alice.address, "submit",
                                  one_time=True),
    ]
    results = client.submit(batch)
    for request, result in zip(batch, results):
        outcome = "issued" if result.issued else result.code.value
        print(f"  {request.describe():<60} -> {outcome}")

    # --- 5. stats fold every layer; the transport counts the wire -------------
    stats = client.stats()
    print(f"\nissued={stats['issued']} denied={stats['denied']} "
          f"failovers={stats['retry_failover']['failovers']} "
          f"rate-limited={stats['rate_limiter']['limited']}")
    print(f"wire traffic: {stats['transport']['requests']} envelopes, "
          f"{stats['transport']['bytes_sent']}B out / "
          f"{stats['transport']['bytes_received']}B back")
    assert results[1].code is ErrorCode.DENIED

    # --- 6. the same gateway over real TCP sockets ----------------------------
    with serve(gateway) as server:          # port 0 -> a free port, read back
        print(f"\ngateway listening on {server.url}")
        tcp_client = connect(server.url, wire_codec=CODEC_BINARY)
        try:
            result = tcp_client.submit(TokenRequest.method_token(
                recorder.this, alice.address, "submit", one_time=True
            ))[0]
            wire = tcp_client.stats()["transport"]
            print(f"issued over TCP (binary lane): {result.issued}; "
                  f"{wire['kind']} transport dialled {wire['dials']}x, "
                  f"{wire['bytes_sent']}B out / {wire['bytes_received']}B back")
        finally:
            tcp_client.close()
    print(f"server saw {server.stats()['frames_served']} frames; "
          "closed cleanly")


if __name__ == "__main__":
    main()
