#!/usr/bin/env python3
"""SMACS quickstart: protect a contract with off-chain access control rules.

The script walks through the full SMACS workflow of §III:

1. the owner creates a Token Service (TS) holding the signing key and rules;
2. the owner deploys a SMACS-enabled contract preloaded with the TS address;
3. a whitelisted client requests a token and calls the contract with it;
4. a non-whitelisted client is denied a token, and callers without a token
   are rejected on-chain;
5. the owner updates the rules dynamically -- no transaction required.

Run with:  python examples/quickstart.py
"""

from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import (
    ClientWallet,
    OwnerWallet,
    TokenDenied,
    TokenService,
    TokenType,
    gas_to_usd,
)
from repro.core.acr import WhitelistRule
from repro.crypto.keys import KeyPair


def main() -> None:
    # --- 1. a local chain with three externally owned accounts ----------------
    chain = Blockchain()
    owner = chain.create_account("owner", seed="quickstart-owner")
    alice = chain.create_account("alice", seed="quickstart-alice")
    eve = chain.create_account("eve", seed="quickstart-eve")

    # --- 2. the owner provisions a Token Service with a whitelist rule --------
    service = TokenService(keypair=KeyPair.from_seed("quickstart-ts"), clock=chain.clock)
    service.rules.add_rule(WhitelistRule([alice.address], name="partners"))
    print(f"Token Service address (pkTS): {service.address_hex}")

    # --- 3. deploy the SMACS-enabled contract with pkTS preloaded -------------
    owner_wallet = OwnerWallet(owner, service)
    receipt = owner_wallet.deploy_protected(ProtectedRecorder, one_time_bitmap_bits=1024)
    recorder = receipt.return_value
    print(f"Deployed ProtectedRecorder at {recorder.address_hex} "
          f"(gas {receipt.gas_used:,})")

    # --- 4. a whitelisted client obtains a token and calls the contract -------
    alice_wallet = ClientWallet(alice, {recorder.this: service})
    call = alice_wallet.call_with_token(recorder, "submit", amount=42,
                                        token_type=TokenType.METHOD)
    print(f"alice.submit(42): success={call.success}, gas={call.gas_used:,} "
          f"(≈${gas_to_usd(call.gas_used):.3f}), "
          f"verification share={call.breakdown('verify'):,} gas")
    print(f"contract total is now {chain.read(recorder, 'total')}")

    # --- 5. access control in action -------------------------------------------
    no_token = eve.transact(recorder, "submit", 1)
    print(f"eve without a token -> rejected on-chain: {no_token.error}")

    eve_wallet = ClientWallet(eve, {recorder.this: service})
    try:
        eve_wallet.request_token(recorder, TokenType.METHOD, "submit")
    except TokenDenied as denied:
        print(f"eve requesting a token -> denied off-chain: {denied}")

    # --- 6. the owner updates the rules dynamically (zero on-chain cost) -------
    height_before = chain.height

    def hire_eve(rules):
        partners = next(rule for rule in rules.rules_for(TokenType.METHOD)
                        if rule.name == "partners")
        partners.add(eve.address)

    service.update_rules(hire_eve)
    print(f"rule update touched the chain? {chain.height != height_before}")
    call = eve_wallet.call_with_token(recorder, "submit", amount=8,
                                      token_type=TokenType.METHOD)
    print(f"eve after being whitelisted: success={call.success}, "
          f"total={chain.read(recorder, 'total')}")

    # --- 7. one-time tokens for a sensitive method -----------------------------
    one_time = alice_wallet.request_token(recorder, TokenType.METHOD,
                                          "sensitive_reset", one_time=True)
    first = alice.transact(recorder, "sensitive_reset", token=one_time.to_bytes())
    replay = alice.transact(recorder, "sensitive_reset", token=one_time.to_bytes())
    print(f"one-time token: first use={first.success}, replay={replay.success}")


if __name__ == "__main__":
    main()
