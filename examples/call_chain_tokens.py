#!/usr/bin/env python3
"""Tokens for call chains (§IV-D, Fig. 5): SCA -> SCB -> SCC.

Three SMACS-enabled contracts, each protected by its own Token Service
(potentially run by different owners).  The client acquires one token per
contract, embeds the array ``SCA:tkA || SCB:tkB || SCC:tkC`` in the
transaction, and each contract extracts and verifies its own entry before
forwarding the bundle downstream.

Run with:  python examples/call_chain_tokens.py
"""

from repro.chain import Blockchain
from repro.contracts import build_call_chain
from repro.core import ClientWallet, TokenService, TokenType, gas_to_usd
from repro.crypto.keys import KeyPair


def main() -> None:
    chain = Blockchain()
    owner = chain.create_account("owner", seed="chain-owner")
    client = chain.create_account("client", seed="chain-client")

    # One independent Token Service per contract in the chain.
    services = [
        TokenService(keypair=KeyPair.from_seed(f"chain-ts-{i}"), clock=chain.clock,
                     label=f"ts-SC{chr(ord('A') + i)}")
        for i in range(3)
    ]
    contracts = build_call_chain(owner, services, one_time_bitmap_bits=1024)
    for name, contract, service in zip("ABC", contracts, services):
        print(f"SC{name} deployed at {contract.address_hex}, trusts TS {service.address_hex[:12]}…")

    wallet = ClientWallet(client)
    for contract, service in zip(contracts, services):
        wallet.register_service(contract, service)

    # Acquire one method token per contract and assemble the array of §IV-D.
    bundle = wallet.acquire_bundle(
        [{"contract": contract, "method": "invoke", "token_type": TokenType.METHOD}
         for contract in contracts]
    )
    print(f"token array: {bundle.describe()}  ({len(bundle.to_bytes())} bytes)")

    receipt = wallet.call_with_bundle(contracts[0], "invoke", bundle, payload=1)
    print(f"call chain executed: success={receipt.success}, depth={receipt.return_value}, "
          f"gas={receipt.gas_used:,} (≈${gas_to_usd(receipt.gas_used):.3f})")
    print(f"gas split: verify={receipt.breakdown('verify'):,}, "
          f"parse={receipt.breakdown('parse'):,}, misc={receipt.misc_gas:,}")
    for name, contract in zip("ABC", contracts):
        print(f"  SC{name} invocations: {chain.read(contract, 'invocations')}")

    # A bundle missing the deepest token stops the whole chain atomically.
    partial = wallet.acquire_bundle(
        [{"contract": contract, "method": "invoke", "token_type": TokenType.METHOD}
         for contract in contracts[:2]]
    )
    failed = wallet.call_with_bundle(contracts[0], "invoke", partial, payload=1)
    print(f"bundle missing SCC's token -> whole transaction reverts: {not failed.success}")
    print(f"  SCA invocations unchanged: {chain.read(contracts[0], 'invocations')}")


if __name__ == "__main__":
    main()
