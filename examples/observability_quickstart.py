#!/usr/bin/env python3
"""End-to-end observability: traces, metrics and the per-stage profile.

The script tours ``repro.obs``, the zero-dependency observability layer:

1. ``Observability()`` bundles a metrics registry (counters, gauges,
   log-scale histograms) with a structured tracer; instrumenting a gateway
   and an execution pipeline is two method calls, and an uninstrumented
   deployment pays one attribute check;
2. a replicated issuance profile is served over real TCP; the traced client
   stamps a trace context onto each wire envelope (one optional field, both
   codec lanes -- old peers simply ignore it) and the server's
   ``gateway.handle`` span adopts it, so one trace id spans the socket;
3. the profiled stages -- gateway decode, issuance, mempool admission,
   block build, pre-warm, execute, WAL commit fsync -- fill histograms as a
   workload runs through the full client -> TS -> contract loop;
4. the ``metrics`` gateway op ships the whole snapshot back over the same
   wire, which is what ``python -m repro.obs.dump tcp://host:port`` renders.

Run with:  python examples/observability_quickstart.py
"""

import tempfile

from repro.api import ServiceGateway, build_service, connect, serve
from repro.chain import Blockchain
from repro.contracts.protected_target import ProtectedRecorder
from repro.core import OwnerWallet
from repro.crypto.sigcache import SignatureCache
from repro.obs import Observability
from repro.obs.dump import render_text
from repro.pipeline import ExecutionPipeline, SmacsLoadGenerator
from repro.storage import DurableStore

TS_URL = "https://ts.obs.example"


def main() -> None:
    # --- 1. a traced server: replicated issuance behind an instrumented gateway
    server_obs = Observability()
    service = build_service("replicated", replica_count=3, seed=7)
    gateway = ServiceGateway(observability=server_obs)
    gateway.register(TS_URL, service)

    cache = SignatureCache()
    chain = Blockchain()
    chain.evm.signature_cache = cache
    owner = chain.create_account("owner", seed="obs-owner")
    clients = [chain.create_account(f"c{i}", seed=f"obs-client-{i}") for i in range(4)]

    with serve(gateway) as server, tempfile.TemporaryDirectory() as workdir:
        print(f"traced gateway listening on {server.url}")
        endpoint = connect(server.url, route=TS_URL)
        endpoint.observability = client_obs = Observability()
        try:
            recorder = OwnerWallet(owner, endpoint).deploy_protected(
                ProtectedRecorder, one_time_bitmap_bits=4096, ts_url=TS_URL
            ).return_value

            # --- 2. an instrumented pipeline + durable store ------------------
            chain.auto_mine = False
            pipeline = ExecutionPipeline(chain, signature_cache=cache)
            store = DurableStore(workdir, "sqlite")
            store.attach(pipeline)
            server_obs.instrument_pipeline(pipeline)

            # --- 3. fire a short workload through the whole loop --------------
            generator = SmacsLoadGenerator(endpoint, recorder, clients)
            txs = generator.from_arrivals([5, 8, 3, 6])
            pipeline.ingest(txs)
            results = pipeline.drain()
            store.close()
            executed = sum(r.executed for r in results)
            print(f"executed {executed} transactions in {len(results)} blocks "
                  f"({chain.read(recorder, 'entries')} recorder entries)\n")

            # One trace id crossed the wire per client call:
            client_span = client_obs.tracer.finished_spans()[-1]
            server_span = next(
                s for s in reversed(server_obs.tracer.finished_spans())
                if s.name == "gateway.handle"
            )
            print(f"client span {client_span.name!r} trace={client_span.trace_id}")
            print(f"server span {server_span.name!r} trace={server_span.trace_id} "
                  f"(parent={server_span.parent_id})\n")

            # --- 4. fetch the snapshot through the metrics wire op ------------
            snapshot = endpoint.metrics()
        finally:
            endpoint.close()

    print(render_text(snapshot))
    slowest = max(
        (row for row in snapshot["stages"].values() if row["p50_ms"] is not None),
        key=lambda row: row["p50_ms"],
    )
    stage = next(k for k, v in snapshot["stages"].items() if v is slowest)
    print(f"\nslowest stage by p50: {stage} ({slowest['p50_ms']:.3f} ms)")


if __name__ == "__main__":
    main()
